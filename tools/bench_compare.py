#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json records.

Diffs freshly produced bench records against committed baselines
(bench/baselines/) and fails when a throughput key regressed past the
noise band or an allocation key grew past its (much tighter) band:

    bench_compare.py --baseline bench/baselines --current . \
        [--throughput-tolerance 0.60] [--allocs-tolerance 0.15] [--update]

Design decisions (see docs/performance.md, "CI regression gate"):

- Records pair by file name (BENCH_substrate.json <-> BENCH_substrate.json).
  A baseline with no fresh counterpart is an error (the bench stopped
  producing output); a fresh record with no baseline is a warning (new
  bench, commit a baseline when ready).
- Gated keys are exactly the `*_per_sec` rates (lower is worse) and the
  deterministic per-unit ratios where higher is worse:
  `*_allocs_per_program`, `*_allocs_per_witness` (the judge pipeline's
  steady-state allocation grade), `*_base_builds_per_program` (the
  incremental-SAT structure-base cache economy — a broken cache rebuilds
  per structure change and the ratio jumps), and the phase-attributed
  `*_allocs_per_phase_<phase>` breakdown (a leak in one phase moves its
  key even when the per-program total hides it). Everything else is
  context.
- Rates carry machine noise — CI runners differ wildly from the machines
  baselines were recorded on — so their band is loose by default (a run
  must lose over 60% of baseline throughput to fail, i.e. catch
  catastrophes, not jitter). Allocation ratios are deterministic per
  workload, so their band is tight (15%).
- Context keys shared by both records ("bound", "min_bound", "workload")
  must match exactly: comparing a bound-5 run against a bound-6 baseline
  is meaningless, so a mismatch skips the record with a warning rather
  than failing or (worse) silently diffing.
- A bench_schema_version mismatch likewise skips the record: renamed keys
  must be re-baselined, not treated as regressions.
- A gated key present in the baseline but missing from the fresh record
  FAILS: silently dropping a metric is how regressions hide.
- --update rewrites the baselines from the fresh records (run locally
  after an intentional perf change, then commit the diff).
"""

import argparse
import json
import os
import shutil
import sys

# Context keys that must match for a comparison to be meaningful.
CONTEXT_KEYS = ("bound", "min_bound", "workload", "bench")


def is_rate_key(key):
    return key.endswith("_per_sec")


def is_allocs_key(key):
    """Deterministic higher-is-worse ratios sharing the tight band."""
    return (key.endswith("_allocs_per_program")
            or key.endswith("_allocs_per_witness")
            or key.endswith("_base_builds_per_program")
            or "_allocs_per_phase_" in key)


def load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_record(name, baseline, current, args, problems, notes):
    """Appends failures to problems / observations to notes."""
    base_schema = baseline.get("bench_schema_version")
    cur_schema = current.get("bench_schema_version")
    if base_schema != cur_schema:
        notes.append(
            f"{name}: bench_schema_version {base_schema} -> {cur_schema}; "
            "skipped (re-baseline with --update)")
        return
    for key in CONTEXT_KEYS:
        if key in baseline and key in current and baseline[key] != current[key]:
            notes.append(
                f"{name}: context '{key}' differs "
                f"({baseline[key]!r} vs {current[key]!r}); skipped — "
                "regenerate baselines with the CI knobs")
            return

    for key, base_value in sorted(baseline.items()):
        gated_rate = is_rate_key(key)
        gated_allocs = is_allocs_key(key)
        if not gated_rate and not gated_allocs:
            continue
        if key not in current:
            problems.append(
                f"{name}: gated key '{key}' missing from fresh record")
            continue
        cur_value = current[key]
        if not isinstance(base_value, (int, float)) or not isinstance(
                cur_value, (int, float)):
            problems.append(f"{name}: '{key}' is not numeric")
            continue
        if gated_rate:
            floor = base_value * (1.0 - args.throughput_tolerance)
            if cur_value < floor:
                problems.append(
                    f"{name}: {key} regressed: {cur_value:.6g} < "
                    f"{floor:.6g} (baseline {base_value:.6g}, "
                    f"tolerance {args.throughput_tolerance:.0%})")
            else:
                notes.append(
                    f"{name}: {key} {base_value:.6g} -> {cur_value:.6g} ok")
        else:
            ceiling = base_value * (1.0 + args.allocs_tolerance)
            if cur_value > ceiling:
                problems.append(
                    f"{name}: {key} regressed: {cur_value:.6g} > "
                    f"{ceiling:.6g} (baseline {base_value:.6g}, "
                    f"tolerance {args.allocs_tolerance:.0%})")
            else:
                notes.append(
                    f"{name}: {key} {base_value:.6g} -> {cur_value:.6g} ok")


def bench_files(directory):
    return sorted(
        f for f in os.listdir(directory)
        if f.startswith("BENCH_") and f.endswith(".json"))


def main():
    parser = argparse.ArgumentParser(
        description="diff fresh BENCH_*.json records against baselines")
    parser.add_argument("--baseline", required=True,
                        help="directory of committed baseline records")
    parser.add_argument("--current", required=True,
                        help="directory of freshly produced records")
    parser.add_argument("--throughput-tolerance", type=float, default=0.60,
                        help="allowed fractional drop for *_per_sec keys "
                             "(default 0.60: catch catastrophes, not "
                             "runner jitter)")
    parser.add_argument("--allocs-tolerance", type=float, default=0.15,
                        help="allowed fractional growth for the tight-band "
                             "ratio keys (*_allocs_per_program, "
                             "*_allocs_per_witness, "
                             "*_base_builds_per_program, "
                             "*_allocs_per_phase_<phase>; default 0.15: "
                             "they are deterministic per workload)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baselines from the fresh records")
    args = parser.parse_args()

    if not os.path.isdir(args.current):
        print(f"--current {args.current} is not a directory",
              file=sys.stderr)
        return 2
    fresh = bench_files(args.current)
    if not fresh:
        print(f"no BENCH_*.json records under {args.current}",
              file=sys.stderr)
        return 2

    if args.update:
        os.makedirs(args.baseline, exist_ok=True)
        for name in fresh:
            shutil.copyfile(os.path.join(args.current, name),
                            os.path.join(args.baseline, name))
            print(f"baseline updated: {os.path.join(args.baseline, name)}")
        return 0

    if not os.path.isdir(args.baseline):
        print(f"no baseline directory {args.baseline}; nothing to gate "
              "(seed it with --update)")
        return 0

    problems = []
    notes = []
    baselines = bench_files(args.baseline)
    for name in baselines:
        if name not in fresh:
            problems.append(
                f"{name}: baseline exists but the bench produced no fresh "
                "record")
            continue
        compare_record(name, load(os.path.join(args.baseline, name)),
                       load(os.path.join(args.current, name)), args,
                       problems, notes)
    for name in fresh:
        if name not in baselines:
            notes.append(f"{name}: no committed baseline; not gated "
                         "(add one with --update)")

    for line in notes:
        print(f"  [note] {line}")
    for line in problems:
        print(f"  [FAIL] {line}", file=sys.stderr)
    print(f"bench_compare: {len(problems)} failure(s), "
          f"{len(notes)} note(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
