/// \file
/// elt_check — judge ELT files against a transistency model.
///
/// Reads tests (litmus text for a program, or XML for a full candidate
/// execution), derives their relations and reports the verdict. For litmus
/// input (no witnesses), enumerates the program's execution space and
/// reports how many outcomes are permitted/forbidden and which axioms can
/// be violated — i.e. whether the test can expose forbidden behaviour.
///
///   elt_check test.litmus
///   elt_check --model sc_t_elt execution.xml
///   elt_check --model examples/models/pso.mtm test.litmus
///   elt_check --jobs 0 suites/invlpg/*.litmus
///   elt_check --backend sat --sat-incremental off test.litmus
///
/// --model accepts the same names as elt_synth: a hardwired builtin, a
/// registry `.mtm` model, or a path to a `.mtm` specification file
/// (malformed files exit 2 with a file:line:col diagnostic).
///
/// --backend enum|sat picks how a litmus program's execution space is
/// swept: the explicit enumerator (default) or the SAT encoding's AllSAT
/// loop; --sat-incremental on|off (default on) additionally routes the
/// SAT sweep through the assumption-based live-solver session that the
/// synthesis engine uses. The verdicts and counts are identical under
/// every combination — the flags exist to cross-check exactly that from
/// the command line.
///
/// Several files are checked concurrently on the shared work-stealing pool
/// (src/sched/ v2, Chase-Lev deques; --jobs N workers, 0 = one per
/// hardware thread) as a single job group; reports are buffered and
/// printed in input order, so the output does not depend on --jobs.
///
/// --trace FILE records each file's check as a span on its worker's lane
/// and writes a Chrome trace-event JSON file (Perfetto /
/// chrome://tracing; see docs/observability.md).
///
/// --metrics-json FILE writes the same versioned metrics-JSON document as
/// elt_synth (obs::report_to_json, docs/observability.md): one suite row
/// per input file (axiom = the file path) carrying the execution counts,
/// wall seconds, and — on the incremental SAT backend — the session's
/// solver counters, plus the merged totals object. Failure parity with
/// elt_synth: a file whose check was cut short (conflict budget) or whose
/// input was unreadable/malformed lands in that suite row's "failures"
/// array ({shard, error, attempts}), exactly like a quarantined synthesis
/// shard, so downstream report consumers handle both tools uniformly.
///
/// Robustness (docs/robustness.md): --sat-conflict-budget N caps each SAT
/// solve at N conflicts (0 = unlimited); a sweep that exhausts it reports
/// the file as incomplete. SIGINT/SIGTERM cancel cooperatively — queued
/// files are skipped, the in-flight sweep stops between executions, and
/// finished reports still print.
///
/// Exit codes: 0 = every file checked and complete; 1 = I/O error writing
/// --trace/--metrics-json; 2 = usage error or unreadable/malformed input;
/// 3 = a check was cut short (cancelled or conflict budget exhausted).
#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "elt/derive.h"
#include "elt/litmus.h"
#include "elt/printer.h"
#include "elt/serialize.h"
#include "mtm/encoding.h"
#include "mtm/incremental.h"
#include "mtm/model.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "spec/registry.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"
#include "tool_args.h"
#include "util/cancel.h"

namespace {

using namespace transform;

/// How check_program sweeps a litmus program's execution space.
struct CheckOptions {
    bool sat = false;              ///< --backend sat
    bool sat_incremental = true;   ///< --sat-incremental on|off
    bool metrics = false;          ///< --metrics-json (enables solver timing)
    long long sat_conflict_budget = 0;  ///< per-solve cap (0 = unlimited)
    util::CancelToken cancel;      ///< SIGINT/SIGTERM (inert by default)
};

/// printf-style append to a report buffer (reports are built off-thread and
/// printed in input order once every file is checked). For short formatted
/// lines only — unbounded strings (program/execution dumps) must be
/// appended with `*out +=` to avoid the buffer limit.
__attribute__((format(printf, 2, 3))) void
appendf(std::string* out, const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buffer[4096];
    std::vsnprintf(buffer, sizeof buffer, fmt, args);
    va_end(args);
    *out += buffer;
}

int
check_program(const mtm::Model& model, const elt::Program& program,
              const std::string& name, const CheckOptions& options,
              std::string* out, obs::SuiteReport* suite)
{
    appendf(out, "test %s:\n", name.c_str());
    *out += elt::program_to_string(program);
    *out += '\n';
    int permitted = 0;
    int forbidden = 0;
    bool any_minimal = false;
    bool cancelled = false;
    std::map<std::string, int> by_axiom;
    auto consider = [&](const elt::Execution& e) {
        if (options.cancel.requested()) {
            cancelled = true;
            return false;
        }
        const auto violated = model.violated_axioms(e);
        if (violated.empty()) {
            ++permitted;
        } else {
            ++forbidden;
            for (const auto& a : violated) {
                ++by_axiom[a];
            }
            const auto verdict = synth::judge(model, e);
            any_minimal = any_minimal || verdict.minimal;
        }
        return true;
    };
    try {
        if (!options.sat) {
            synth::for_each_execution(program, model.vm_aware(), consider);
        } else if (options.sat_incremental) {
            // The live-solver session sizes its VA/PA selector domains up
            // front; a checked program's addresses are fixed, so its own
            // maxima are the exact domains.
            int max_vas = 1;
            int max_pas = 1;
            for (int e = 0; e < program.num_events(); ++e) {
                max_vas = std::max(max_vas, program.event(e).va + 1);
                max_pas = std::max(max_pas, program.event(e).map_pa + 1);
            }
            max_pas = std::max(max_pas, max_vas);
            mtm::IncrementalEncoding session;
            session.configure(&model, "", max_vas, max_pas);
            session.set_timing(options.metrics);
            session.set_conflict_budget(options.sat_conflict_budget);
            session.enumerate(program, consider);
            suite->solver.merge(session.lifetime_stats());
        } else {
            mtm::EncodingScratch scratch;
            scratch.solver.set_conflict_budget(options.sat_conflict_budget);
            mtm::ProgramEncoding encoding(program, &model, &scratch);
            encoding.enumerate("", consider);
        }
    } catch (const sat::BudgetExhausted& e) {
        appendf(out, "check cut short: %s\n", e.what());
        suite->complete = false;
        // Failure parity with elt_synth's quarantine records: one check
        // attempt, cut short by the budget.
        suite->failures.push_back({name, e.what(), 1});
        return 3;
    }
    if (cancelled) {
        appendf(out, "check cancelled before the sweep finished\n");
        suite->complete = false;
        suite->cancelled = true;
        return 3;
    }
    appendf(out, "under %s: %d permitted, %d forbidden execution(s)\n",
            model.name().c_str(), permitted, forbidden);
    for (const auto& [axiom, count] : by_axiom) {
        appendf(out, "  %-16s violable (%d execution(s))\n", axiom.c_str(),
                count);
    }
    if (forbidden > 0) {
        appendf(out, "spanning-set status: %s\n",
                any_minimal ? "minimal forbidden outcome exists "
                              "(TransForm would synthesize this test)"
                            : "forbidden but reducible (not minimal)");
    }
    suite->programs_considered += 1;
    suite->executions_considered +=
        static_cast<std::uint64_t>(permitted + forbidden);
    if (forbidden > 0 && any_minimal) {
        suite->tests += 1;  // a spanning-set-worthy test
    }
    return 0;
}

/// Checks one file end-to-end. Normal output goes to \p out, error lines to
/// \p err; returns the process exit code contribution.
int
check_file(const mtm::Model& model, const std::string& path,
           const CheckOptions& options, std::string* out, std::string* err,
           obs::SuiteReport* suite)
{
    std::ifstream in(path);
    if (!in) {
        appendf(err, "cannot open %s\n", path.c_str());
        suite->complete = false;
        suite->failures.push_back({path, "cannot open", 1});
        return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();

    if (text.find("<elt") != std::string::npos) {
        const auto execution = elt::execution_from_xml(text);
        if (!execution) {
            appendf(err, "malformed XML in %s\n", path.c_str());
            suite->complete = false;
            suite->failures.push_back({path, "malformed XML", 1});
            return 2;
        }
        const auto derived =
            elt::derive(*execution, model.derive_options());
        *out += elt::execution_to_string(*execution, derived);
        const auto violated = model.violated_axioms(*execution);
        if (violated.empty()) {
            appendf(out, "verdict under %s: PERMITTED\n",
                    model.name().c_str());
        } else {
            appendf(out, "verdict under %s: FORBIDDEN (",
                    model.name().c_str());
            for (const auto& axiom : violated) {
                appendf(out, " %s", axiom.c_str());
            }
            appendf(out, " )\n");
        }
        return 0;
    }

    std::string error;
    const auto parsed = elt::parse_litmus(text, &error);
    if (!parsed) {
        appendf(err, "%s: %s\n", path.c_str(), error.c_str());
        suite->complete = false;
        suite->failures.push_back({path, error, 1});
        return 2;
    }
    const auto problems = parsed->program.validate(model.vm_aware());
    if (!problems.empty()) {
        appendf(err, "%s: invalid program: %s\n", path.c_str(),
                problems[0].c_str());
        suite->complete = false;
        suite->failures.push_back(
            {path, "invalid program: " + problems[0], 1});
        return 2;
    }
    return check_program(model, parsed->program, parsed->name, options,
                         out, suite);
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string model_name = "x86t_elt";
    int jobs = 1;
    std::string trace_path;
    std::string metrics_path;
    CheckOptions options;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--model" && i + 1 < argc) {
            model_name = argv[++i];
        } else if (flag == "--backend") {
            const std::string text = i + 1 < argc ? argv[++i] : "";
            if (text == "enum") {
                options.sat = false;
            } else if (text == "sat") {
                options.sat = true;
            } else {
                return tools::usage_error(flag, "'enum' or 'sat'", text);
            }
        } else if (flag == "--sat-incremental") {
            const std::string text = i + 1 < argc ? argv[++i] : "";
            if (text == "on") {
                options.sat_incremental = true;
            } else if (text == "off") {
                options.sat_incremental = false;
            } else {
                return tools::usage_error(flag, "'on' or 'off'", text);
            }
        } else if (flag == "--sat-conflict-budget") {
            const std::string text = i + 1 < argc ? argv[++i] : "";
            long long parsed = 0;
            if (!tools::parse_int(text, 0, 1LL << 40, &parsed)) {
                return tools::usage_error(
                    flag, "a conflict count in 0..2^40 (0 = unlimited)",
                    text);
            }
            options.sat_conflict_budget = parsed;
        } else if (flag == "--jobs") {
            const std::string text = i + 1 < argc ? argv[++i] : "";
            if (!tools::parse_jobs(text, &jobs)) {
                return tools::usage_error(flag, tools::kJobsExpectation,
                                          text);
            }
        } else if (flag == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (flag == "--metrics-json" && i + 1 < argc) {
            metrics_path = argv[++i];
        } else {
            paths.push_back(flag);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: elt_check [--model NAME] [--backend enum|sat] "
                     "[--sat-incremental on|off] [--jobs N] "
                     "[--sat-conflict-budget N] "
                     "[--trace FILE] [--metrics-json FILE] <file>...\n");
        return 2;
    }
    std::string model_error;
    const auto resolved = spec::resolve_model(model_name, &model_error);
    if (!resolved.has_value()) {
        std::fprintf(stderr, "%s\n", model_error.c_str());
        return 2;
    }
    // One shared model: the axiom closures are stateless, so concurrent
    // checks through a const reference are safe.
    const mtm::Model& model = resolved->model;

    options.metrics = !metrics_path.empty();
    // Cooperative cancellation: queued file jobs exit immediately, the
    // in-flight sweep stops between executions, finished reports print.
    options.cancel = util::install_signal_cancel();

    struct Report {
        int rc = 0;
        std::string out;
        std::string err;
        obs::SuiteReport suite;
    };
    std::vector<Report> reports(paths.size());
    sched::WorkStealingPool pool(jobs);
    std::optional<obs::TraceCollector> trace;
    if (!trace_path.empty()) {
        trace.emplace(pool.workers());
        pool.set_trace(&*trace);
    }
    std::vector<sched::WorkStealingPool::Job> batch;
    batch.reserve(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
        obs::TraceCollector* tc = trace ? &*trace : nullptr;
        batch.push_back([&model, &paths, &reports, &options, tc,
                         i](int worker) {
            const std::uint64_t start = obs::now_nanos();
            reports[i].suite.axiom = paths[i];
            if (options.cancel.requested()) {
                appendf(&reports[i].err, "%s: skipped (cancelled)\n",
                        paths[i].c_str());
                reports[i].rc = 3;
                reports[i].suite.cancelled = true;
                reports[i].suite.complete = false;
                return;
            }
            reports[i].rc = check_file(model, paths[i], options,
                                       &reports[i].out, &reports[i].err,
                                       &reports[i].suite);
            const std::uint64_t stop = obs::now_nanos();
            reports[i].suite.seconds =
                static_cast<double>(stop - start) * 1e-9;
            reports[i].suite.complete = reports[i].rc == 0;
            if (tc != nullptr) {
                tc->record_complete(worker, "check " + paths[i], start,
                                    stop);
            }
        });
    }
    pool.run_batch(std::move(batch));
    if (trace) {
        pool.set_trace(nullptr);
        std::string error;
        if (!trace->write(trace_path, &error)) {
            std::fprintf(stderr, "--trace: %s\n", error.c_str());
            return 1;
        }
    }

    if (!metrics_path.empty()) {
        obs::RunReport run;
        run.tool = "elt_check";
        run.model = model_name;
        run.backend = options.sat ? "sat" : "enum";
        run.jobs = pool.workers();
        for (const Report& report : reports) {
            run.suites.push_back(report.suite);
        }
        std::string error;
        if (!obs::write_report(metrics_path, run, &error)) {
            std::fprintf(stderr, "--metrics-json: %s\n", error.c_str());
            return 1;
        }
    }

    int rc = 0;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i > 0 && paths.size() > 1) {
            std::printf("\n");
        }
        std::fputs(reports[i].out.c_str(), stdout);
        std::fputs(reports[i].err.c_str(), stderr);
        rc = std::max(rc, reports[i].rc);
    }
    return rc;
}
