/// \file
/// elt_check — judge ELT files against a transistency model.
///
/// Reads a test (litmus text for a program, or XML for a full candidate
/// execution), derives its relations and reports the verdict. For litmus
/// input (no witnesses), enumerates the program's execution space and
/// reports how many outcomes are permitted/forbidden and which axioms can
/// be violated — i.e. whether the test can expose forbidden behaviour.
///
///   elt_check test.litmus
///   elt_check --model sc_t_elt execution.xml
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "elt/derive.h"
#include "elt/litmus.h"
#include "elt/printer.h"
#include "elt/serialize.h"
#include "mtm/model.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"

namespace {

using namespace transform;

mtm::Model
make_model(const std::string& name)
{
    if (name == "x86tso") {
        return mtm::x86tso();
    }
    if (name == "sc_t_elt") {
        return mtm::sc_t_elt();
    }
    return mtm::x86t_elt();
}

int
check_program(const mtm::Model& model, const elt::Program& program,
              const std::string& name)
{
    std::printf("test %s:\n%s\n", name.c_str(),
                elt::program_to_string(program).c_str());
    int permitted = 0;
    int forbidden = 0;
    bool any_minimal = false;
    std::map<std::string, int> by_axiom;
    synth::for_each_execution(program, model.vm_aware(),
                              [&](const elt::Execution& e) {
                                  const auto violated =
                                      model.violated_axioms(e);
                                  if (violated.empty()) {
                                      ++permitted;
                                  } else {
                                      ++forbidden;
                                      for (const auto& a : violated) {
                                          ++by_axiom[a];
                                      }
                                      const auto verdict =
                                          synth::judge(model, e);
                                      any_minimal =
                                          any_minimal || verdict.minimal;
                                  }
                                  return true;
                              });
    std::printf("under %s: %d permitted, %d forbidden execution(s)\n",
                model.name().c_str(), permitted, forbidden);
    for (const auto& [axiom, count] : by_axiom) {
        std::printf("  %-16s violable (%d execution(s))\n", axiom.c_str(),
                    count);
    }
    if (forbidden > 0) {
        std::printf("spanning-set status: %s\n",
                    any_minimal ? "minimal forbidden outcome exists "
                                  "(TransForm would synthesize this test)"
                                : "forbidden but reducible (not minimal)");
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string model_name = "x86t_elt";
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--model" && i + 1 < argc) {
            model_name = argv[++i];
        } else {
            path = flag;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "usage: elt_check [--model NAME] <file>\n");
        return 2;
    }
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    const mtm::Model model = make_model(model_name);

    if (text.find("<elt") != std::string::npos) {
        const auto execution = elt::execution_from_xml(text);
        if (!execution) {
            std::fprintf(stderr, "malformed XML in %s\n", path.c_str());
            return 2;
        }
        const auto derived =
            elt::derive(*execution, model.derive_options());
        std::printf("%s",
                    elt::execution_to_string(*execution, derived).c_str());
        const auto violated = model.violated_axioms(*execution);
        if (violated.empty()) {
            std::printf("verdict under %s: PERMITTED\n", model.name().c_str());
        } else {
            std::printf("verdict under %s: FORBIDDEN (", model.name().c_str());
            for (const auto& axiom : violated) {
                std::printf(" %s", axiom.c_str());
            }
            std::printf(" )\n");
        }
        return 0;
    }

    std::string error;
    const auto parsed = elt::parse_litmus(text, &error);
    if (!parsed) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
        return 2;
    }
    const auto problems = parsed->program.validate(model.vm_aware());
    if (!problems.empty()) {
        std::fprintf(stderr, "%s: invalid program: %s\n", path.c_str(),
                     problems[0].c_str());
        return 2;
    }
    return check_program(model, parsed->program, parsed->name);
}
