#!/usr/bin/env python3
"""A/B delta table over two metrics-JSON run reports.

Compares the versioned reports written by `elt_synth --metrics-json` /
`elt_check --metrics-json` (obs::report_to_json, docs/observability.md)
and prints what moved: every numeric key of the totals object — scheduler
counters, solver counters, per-phase seconds/latency-percentiles/alloc
breakdowns — as a before/after/delta table.

    metrics_diff.py baseline.json candidate.json
    metrics_diff.py --suite invlpg a.json b.json   # one suite, not totals
    metrics_diff.py --all a.json b.json            # unchanged keys too

Typical use (docs/performance.md): capture a report before and after a
change with identical flags, then diff. Deterministic counters
(programs_considered, dedup hits, alloc counts) must match exactly for a
pure-perf change — a moved counter means the change perturbed the search,
which the byte-identity tests will also catch. Timing keys (seconds,
p50/p90/p99) carry machine noise; read them as trends.

Exit codes: 0 = diff printed; 2 = usage / unreadable input / schema
mismatch (reports with different schema_version values are not
comparable — regenerate, don't eyeball).
"""

import argparse
import json
import sys


def flatten(prefix, value, out):
    """Dotted-key flattening of nested objects; numbers only."""
    if isinstance(value, dict):
        for key, child in value.items():
            flatten(f"{prefix}.{key}" if prefix else key, child, out)
    elif isinstance(value, bool):
        out[prefix] = int(value)
    elif isinstance(value, (int, float)):
        out[prefix] = value


def pick(report, suite_name):
    if suite_name is None:
        return report.get("totals", {})
    for suite in report.get("suites", []):
        if suite.get("axiom") == suite_name:
            return suite
    return None


def main():
    parser = argparse.ArgumentParser(
        description="diff two metrics-JSON run reports")
    parser.add_argument("baseline", help="the 'before' report")
    parser.add_argument("candidate", help="the 'after' report")
    parser.add_argument("--suite", default=None,
                        help="diff one suite (by axiom / file path) "
                             "instead of the totals object")
    parser.add_argument("--all", action="store_true",
                        help="print unchanged keys too")
    args = parser.parse_args()

    reports = []
    for path in (args.baseline, args.candidate):
        try:
            with open(path, encoding="utf-8") as handle:
                reports.append(json.load(handle))
        except (OSError, ValueError) as error:
            print(f"cannot read {path}: {error}", file=sys.stderr)
            return 2
    schemas = [r.get("schema_version") for r in reports]
    if schemas[0] != schemas[1]:
        print(f"schema_version mismatch ({schemas[0]} vs {schemas[1]}); "
              "reports are not comparable — regenerate both",
              file=sys.stderr)
        return 2

    sides = []
    for path, report in zip((args.baseline, args.candidate), reports):
        picked = pick(report, args.suite)
        if picked is None:
            print(f"{path}: no suite '{args.suite}'", file=sys.stderr)
            return 2
        flat = {}
        flatten("", picked, flat)
        sides.append(flat)
    before, after = sides

    scope = args.suite if args.suite else "totals"
    print(f"metrics_diff: {scope} "
          f"(schema v{schemas[0]}, {args.baseline} -> {args.candidate})")
    width = max((len(k) for k in before | after), default=3)
    print(f"  {'key':<{width}} {'before':>14} {'after':>14} "
          f"{'delta':>12} {'pct':>8}")
    changed = 0
    for key in sorted(before | after):
        a = before.get(key)
        b = after.get(key)
        if a == b and not args.all:
            continue
        if a is None or b is None:
            side = "baseline" if b is None else "candidate"
            print(f"  {key:<{width}} {'only in ' + side:>14}")
            changed += 1
            continue
        delta = b - a
        pct = f"{delta / a:+.1%}" if a != 0 else ("new" if b else "0")
        print(f"  {key:<{width}} {a:>14.6g} {b:>14.6g} "
              f"{delta:>+12.6g} {pct:>8}")
        if delta != 0:
            changed += 1
    print(f"metrics_diff: {changed} key(s) changed, "
          f"{len(before | after)} compared")
    return 0


if __name__ == "__main__":
    sys.exit(main())
