/// \file
/// Shared strict flag parsing for the command-line tools (elt_synth,
/// elt_check). All numeric flags go through std::from_chars with
/// whole-string consumption and range validation, so trailing junk
/// ("8x"), prefixes ("0x8"), empty strings, and out-of-range values are
/// usage errors — never the silent 0 that std::atoi produced.
#pragma once

#include <charconv>
#include <cstdio>
#include <string>

namespace transform::tools {

/// Strict decimal integer parsing: the whole string must be a base-10
/// number inside [min, max].
inline bool
parse_int(const std::string& text, long long min, long long max,
          long long* out)
{
    if (text.empty()) {
        return false;
    }
    long long value = 0;
    const char* first = text.data();
    const char* last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value, 10);
    if (ec != std::errc() || ptr != last || value < min || value > max) {
        return false;
    }
    *out = value;
    return true;
}

/// Strict non-negative decimal parsing for seconds values.
inline bool
parse_seconds(const std::string& text, double* out)
{
    if (text.empty()) {
        return false;
    }
    double value = 0;
    const char* first = text.data();
    const char* last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || !(value >= 0)) {
        return false;
    }
    *out = value;
    return true;
}

/// Prints the uniform usage error and returns the tools' usage exit code.
inline int
usage_error(const std::string& flag, const char* expected,
            const std::string& got)
{
    std::fprintf(stderr, "%s takes %s, got '%s'\n", flag.c_str(), expected,
                 got.c_str());
    return 2;
}

/// The --jobs contract shared by both tools: 0..1024, 0 = one worker per
/// hardware thread.
inline bool
parse_jobs(const std::string& text, int* out)
{
    long long value = 0;
    if (!parse_int(text, 0, 1024, &value)) {
        return false;
    }
    *out = static_cast<int>(value);
    return true;
}

inline constexpr const char* kJobsExpectation =
    "a worker count in 0..1024 (0 = hardware threads)";

}  // namespace transform::tools
