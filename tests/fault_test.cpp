/// \file
/// Tests for the fault-tolerant synthesis runtime (docs/robustness.md):
/// the deterministic fault-injection plan, the solver's persistent
/// conflict budget and interrupt hook, cooperative cancellation, the
/// fault matrix (injected faults at every site, across jobs counts and
/// shard depths, must leave the synthesized suite byte-identical after
/// retries), quarantine of deterministic faults, and the crash-safe
/// checkpoint journal — including a real SIGKILL mid-run followed by a
/// byte-identical resume.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "elt/serialize.h"
#include "mtm/model.h"
#include "sat/solver.h"
#include "sched/scheduler.h"
#include "synth/checkpoint.h"
#include "synth/engine.h"
#include "util/cancel.h"
#include "util/fault.h"

#if defined(__linux__)
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace transform {
namespace {

synth::SynthesisOptions
small_options(int min_bound, int bound)
{
    synth::SynthesisOptions opt;
    opt.min_bound = min_bound;
    opt.bound = bound;
    opt.max_threads = 2;
    opt.max_vas = 2;
    opt.max_fresh_pas = 1;
    return opt;
}

/// Byte-level identity of a suite: canonical keys, sizes, violated axiom
/// lists, and the exact witness XML (same comparator obs_test.cpp uses).
std::string
suite_fingerprint(const synth::SuiteResult& suite)
{
    std::string fp;
    for (const synth::SynthesizedTest& test : suite.tests) {
        fp += test.canonical_key;
        fp += '|';
        fp += std::to_string(test.size);
        for (const std::string& axiom : test.violated) {
            fp += ',';
            fp += axiom;
        }
        fp += '|';
        fp += elt::execution_to_xml(test.witness, "w");
        fp += '\n';
    }
    return fp;
}

std::string
temp_path(const std::string& name)
{
    return ::testing::TempDir() + "transform_fault_" + name;
}

sat::Lit
pos(sat::Var v)
{
    return sat::Lit(v, false);
}

sat::Lit
neg(sat::Var v)
{
    return sat::Lit(v, true);
}

/// Builds the classically hard UNSAT pigeonhole instance (holes + 1
/// pigeons into `holes` holes) into \p s.
void
add_pigeonhole(sat::Solver* s, int holes)
{
    const int pigeons = holes + 1;
    std::vector<std::vector<sat::Var>> in(pigeons,
                                          std::vector<sat::Var>(holes));
    for (auto& row : in) {
        for (auto& v : row) {
            v = s->new_var();
        }
    }
    for (int p = 0; p < pigeons; ++p) {
        sat::Clause clause;
        for (int h = 0; h < holes; ++h) {
            clause.push_back(pos(in[p][h]));
        }
        s->add_clause(clause);
    }
    for (int h = 0; h < holes; ++h) {
        for (int p1 = 0; p1 < pigeons; ++p1) {
            for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
                s->add_binary(neg(in[p1][h]), neg(in[p2][h]));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// FaultPlan: grammar and deterministic firing.

TEST(FaultPlan, ParsesFullSpec)
{
    util::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(util::FaultPlan::parse(
        "seed=7,site=sat_solve,kind=alloc,rate=64,mode=sticky,after=3",
        &plan, &error))
        << error;
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_EQ(plan.site, util::FaultSite::kSatSolve);
    EXPECT_EQ(plan.kind, util::FaultPlan::Kind::kBadAlloc);
    EXPECT_EQ(plan.rate, 64u);
    EXPECT_GT(plan.attempts, 1000);  // sticky = survives every retry
    EXPECT_EQ(plan.after, 3u);
}

TEST(FaultPlan, DefaultsAndTransientMode)
{
    util::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(util::FaultPlan::parse("site=judge", &plan, &error)) << error;
    EXPECT_EQ(plan.site, util::FaultSite::kJudge);
    EXPECT_EQ(plan.kind, util::FaultPlan::Kind::kThrow);
    EXPECT_EQ(plan.rate, 1u);
    EXPECT_EQ(plan.attempts, 1);  // transient is the default
    EXPECT_EQ(plan.after, 0u);
}

TEST(FaultPlan, RejectsBadSpecs)
{
    util::FaultPlan plan;
    std::string error;
    EXPECT_FALSE(util::FaultPlan::parse("bogus=1", &plan, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(util::FaultPlan::parse("site=nowhere", &plan, &error));
    EXPECT_FALSE(util::FaultPlan::parse("kind=sparkle", &plan, &error));
    EXPECT_FALSE(util::FaultPlan::parse("rate=0", &plan, &error));
    EXPECT_FALSE(util::FaultPlan::parse("mode=maybe", &plan, &error));
}

TEST(FaultPlan, FiringIsAPureFunctionOfSeedSiteKeyAttempt)
{
    util::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(util::FaultPlan::parse("seed=9,site=derive,rate=4", &plan,
                                       &error))
        << error;
    const auto fired_keys = [&plan](int attempt) {
        std::set<std::uint64_t> keys;
        for (std::uint64_t key = 0; key < 512; ++key) {
            try {
                plan.maybe_fire(util::FaultSite::kDerive, key, attempt);
            } catch (const util::InjectedFault&) {
                keys.insert(key);
            }
        }
        return keys;
    };
    const std::set<std::uint64_t> first = fired_keys(0);
    EXPECT_FALSE(first.empty());
    EXPECT_LT(first.size(), 512u);            // rate=4 selects a subset
    EXPECT_EQ(fired_keys(0), first);          // replay: same keys fire
    EXPECT_TRUE(fired_keys(1).empty());       // transient: retry succeeds
    // Probes at a different site never fire.
    for (std::uint64_t key = 0; key < 512; ++key) {
        EXPECT_NO_THROW(
            plan.maybe_fire(util::FaultSite::kJudge, key, 0));
    }
    EXPECT_EQ(plan.fired(), first.size() * 2);
}

TEST(FaultPlan, AllocKindThrowsBadAlloc)
{
    util::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(util::FaultPlan::parse("site=derive,kind=alloc,rate=1",
                                       &plan, &error))
        << error;
    EXPECT_THROW(plan.maybe_fire(util::FaultSite::kDerive, 0, 0),
                 std::bad_alloc);
}

TEST(FaultPlan, AfterSkipsTheFirstSelectedProbes)
{
    util::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(util::FaultPlan::parse("site=derive,rate=1,after=2", &plan,
                                       &error))
        << error;
    EXPECT_NO_THROW(plan.maybe_fire(util::FaultSite::kDerive, 0, 0));
    EXPECT_NO_THROW(plan.maybe_fire(util::FaultSite::kDerive, 1, 0));
    EXPECT_THROW(plan.maybe_fire(util::FaultSite::kDerive, 2, 0),
                 util::InjectedFault);
    EXPECT_EQ(plan.fired(), 1u);
}

// ---------------------------------------------------------------------------
// Solver: persistent conflict budget and interrupt hook.

TEST(SolverBudget, PersistentConflictBudgetAnswersUnknown)
{
    sat::Solver s;
    add_pigeonhole(&s, 8);
    s.set_conflict_budget(5);
    EXPECT_EQ(s.solve(), sat::SolveResult::kUnknown);
    EXPECT_EQ(s.unknown_cause(), sat::UnknownCause::kConflictBudget);
    // 0 restores the unlimited default and the instance is decidable again.
    s.set_conflict_budget(0);
    EXPECT_EQ(s.solve(), sat::SolveResult::kUnsat);
    EXPECT_EQ(s.unknown_cause(), sat::UnknownCause::kNone);
}

TEST(SolverBudget, InterruptHookStopsTheSearch)
{
    sat::Solver s;
    add_pigeonhole(&s, 9);  // needs far more than one poll interval
    s.set_interrupt([] { return true; });
    EXPECT_EQ(s.solve(), sat::SolveResult::kUnknown);
    EXPECT_EQ(s.unknown_cause(), sat::UnknownCause::kInterrupt);
}

// ---------------------------------------------------------------------------
// Pool backstop: a throwing job must not take the process down.

TEST(PoolFaults, ThrowingJobIsContainedAndCounted)
{
    sched::WorkStealingPool pool(2);
    pool.run_batch({[](int) { throw std::runtime_error("job boom"); },
                    [](int) { /* healthy sibling */ }});
    EXPECT_EQ(pool.stats().job_faults, 1u);
    // The pool stays serviceable afterwards.
    std::atomic<int> ran{0};
    pool.run_batch({[&ran](int) { ran.fetch_add(1); },
                    [&ran](int) { ran.fetch_add(1); }});
    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(pool.stats().job_faults, 1u);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation.

TEST(Cancellation, PreRequestedTokenYieldsEmptyCancelledSuite)
{
    const mtm::Model model = mtm::x86t_elt();
    util::CancelSource source;
    source.request();
    synth::SynthesisOptions opt = small_options(4, 4);
    opt.cancel = source.token();
    opt.jobs = 2;
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, "invlpg", opt);
    EXPECT_TRUE(suite.cancelled);
    EXPECT_FALSE(suite.complete);
    EXPECT_TRUE(suite.tests.empty());
    // The seconds fix: a suite cancelled before any shard ran reports ~0
    // searched time, not the queue wait.
    EXPECT_LT(suite.seconds, 0.01);
}

TEST(Cancellation, MidRunRequestStopsWithinTheRun)
{
    const mtm::Model model = mtm::x86t_elt();
    util::CancelSource source;
    synth::SynthesisOptions opt = small_options(4, 7);
    opt.cancel = source.token();
    opt.jobs = 2;
    std::thread trigger([&source] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        source.request();
    });
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, "sc_per_loc", opt);
    trigger.join();
    EXPECT_TRUE(suite.cancelled);
    EXPECT_FALSE(suite.complete);
}

// ---------------------------------------------------------------------------
// The fault matrix: a rate=1 transient fault at every site, across jobs
// counts and shard depths, must be absorbed by retries into a suite
// byte-identical to the fault-free baseline.

TEST(FaultMatrix, TransientFaultsPreserveTheSuiteAtEverySite)
{
    const mtm::Model model = mtm::x86t_elt();
    const std::string baseline =
        suite_fingerprint(synth::synthesize_suite(model, "invlpg",
                                                  small_options(4, 4)));
    ASSERT_FALSE(baseline.empty());
    const char* sites[] = {"shard_boundary", "derive", "judge"};
    for (const char* site : sites) {
        for (const int jobs : {1, 2, 4}) {
            for (const int depth : {0, 2}) {
                util::FaultPlan plan;
                std::string error;
                ASSERT_TRUE(util::FaultPlan::parse(
                    std::string("seed=7,site=") + site +
                        ",rate=1,mode=transient",
                    &plan, &error))
                    << error;
                synth::SynthesisOptions opt = small_options(4, 4);
                opt.jobs = jobs;
                opt.shard_depth = depth;
                opt.fault_plan = &plan;
                const synth::SuiteResult suite =
                    synth::synthesize_suite(model, "invlpg", opt);
                const std::string label = std::string(site) + " jobs=" +
                                          std::to_string(jobs) + " depth=" +
                                          std::to_string(depth);
                EXPECT_TRUE(suite.complete) << label;
                EXPECT_FALSE(suite.cancelled) << label;
                EXPECT_TRUE(suite.failures.empty()) << label;
                EXPECT_GT(plan.fired(), 0u) << label;
                EXPECT_GT(suite.scheduler.shard_retries, 0u) << label;
                EXPECT_EQ(suite_fingerprint(suite), baseline) << label;
            }
        }
    }
}

TEST(FaultMatrix, TransientSatSolveFaultPreservesTheSuite)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions base = small_options(4, 4);
    base.backend = synth::Backend::kSat;
    const std::string baseline =
        suite_fingerprint(synth::synthesize_suite(model, "invlpg", base));
    ASSERT_FALSE(baseline.empty());
    for (const int jobs : {1, 2}) {
        util::FaultPlan plan;
        std::string error;
        ASSERT_TRUE(util::FaultPlan::parse(
            "seed=7,site=sat_solve,rate=1,mode=transient", &plan, &error))
            << error;
        synth::SynthesisOptions opt = base;
        opt.jobs = jobs;
        opt.fault_plan = &plan;
        const synth::SuiteResult suite =
            synth::synthesize_suite(model, "invlpg", opt);
        EXPECT_TRUE(suite.complete) << "jobs=" << jobs;
        EXPECT_GT(plan.fired(), 0u) << "jobs=" << jobs;
        EXPECT_GT(suite.scheduler.shard_retries, 0u) << "jobs=" << jobs;
        EXPECT_EQ(suite_fingerprint(suite), baseline) << "jobs=" << jobs;
    }
}

TEST(FaultMatrix, AllocationFaultIsContainedLikeAnyOther)
{
    const mtm::Model model = mtm::x86t_elt();
    const std::string baseline =
        suite_fingerprint(synth::synthesize_suite(model, "invlpg",
                                                  small_options(4, 4)));
    util::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(util::FaultPlan::parse(
        "seed=3,site=derive,kind=alloc,rate=1,mode=transient", &plan,
        &error))
        << error;
    synth::SynthesisOptions opt = small_options(4, 4);
    opt.jobs = 2;
    opt.fault_plan = &plan;
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, "invlpg", opt);
    EXPECT_TRUE(suite.complete);
    EXPECT_GT(plan.fired(), 0u);
    EXPECT_EQ(suite_fingerprint(suite), baseline);
}

TEST(FaultMatrix, StickyFaultExhaustsRetriesAndQuarantines)
{
    const mtm::Model model = mtm::x86t_elt();
    util::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(util::FaultPlan::parse(
        "seed=5,site=derive,rate=1,mode=sticky", &plan, &error))
        << error;
    synth::SynthesisOptions opt = small_options(4, 4);
    opt.jobs = 2;
    opt.fault_plan = &plan;
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, "invlpg", opt);
    EXPECT_FALSE(suite.complete);
    EXPECT_FALSE(suite.cancelled);
    ASSERT_FALSE(suite.failures.empty());
    EXPECT_EQ(suite.scheduler.shards_quarantined, suite.failures.size());
    for (const synth::ShardFailure& failure : suite.failures) {
        EXPECT_EQ(failure.attempts, opt.shard_retry_limit + 1);
        EXPECT_FALSE(failure.shard.empty());
        EXPECT_NE(failure.error.find("injected"), std::string::npos)
            << failure.error;
    }
}

TEST(FaultMatrix, ConflictBudgetExhaustionIsARetryableFault)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions opt = small_options(4, 5);
    opt.backend = synth::Backend::kSat;
    opt.sat_conflict_budget = 1;  // deterministically too small
    opt.jobs = 1;
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, "sc_per_loc", opt);
    EXPECT_FALSE(suite.complete);
    EXPECT_FALSE(suite.cancelled);
    ASSERT_FALSE(suite.failures.empty());
    EXPECT_GT(suite.scheduler.shards_quarantined, 0u);
    EXPECT_NE(suite.failures.front().error.find("budget"),
              std::string::npos)
        << suite.failures.front().error;
}

// ---------------------------------------------------------------------------
// Checkpoint/resume.

TEST(Checkpoint, ResumeReplaysJournaledShardsByteIdentically)
{
    const mtm::Model model = mtm::x86t_elt();
    const std::string path = temp_path("roundtrip.journal");
    const std::string fingerprint = "fault_test roundtrip v1";
    std::string error;

    auto journal =
        synth::CheckpointJournal::create(path, fingerprint, &error);
    ASSERT_NE(journal, nullptr) << error;
    synth::SynthesisOptions opt = small_options(4, 4);
    opt.jobs = 2;
    opt.checkpoint = journal.get();
    const synth::SuiteResult first =
        synth::synthesize_suite(model, "invlpg", opt);
    EXPECT_TRUE(first.complete);
    EXPECT_GT(first.scheduler.checkpoint_shards_saved, 0u);
    journal.reset();

    auto resumed =
        synth::CheckpointJournal::resume(path, fingerprint, &error);
    ASSERT_NE(resumed, nullptr) << error;
    EXPECT_GT(resumed->loaded(), 0u);
    opt.checkpoint = resumed.get();
    const synth::SuiteResult second =
        synth::synthesize_suite(model, "invlpg", opt);
    EXPECT_TRUE(second.complete);
    EXPECT_GT(second.scheduler.checkpoint_shards_replayed, 0u);
    EXPECT_EQ(suite_fingerprint(second), suite_fingerprint(first));
    EXPECT_EQ(second.programs_considered, first.programs_considered);
    EXPECT_EQ(second.executions_considered, first.executions_considered);
    std::remove(path.c_str());
}

TEST(Checkpoint, ResumeRefusesAMismatchedFingerprint)
{
    const std::string path = temp_path("fingerprint.journal");
    std::string error;
    auto journal =
        synth::CheckpointJournal::create(path, "configuration A", &error);
    ASSERT_NE(journal, nullptr) << error;
    journal.reset();
    auto resumed =
        synth::CheckpointJournal::resume(path, "configuration B", &error);
    EXPECT_EQ(resumed, nullptr);
    EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(Checkpoint, ResumeDropsATornTail)
{
    const mtm::Model model = mtm::x86t_elt();
    const std::string path = temp_path("torn.journal");
    const std::string fingerprint = "fault_test torn v1";
    std::string error;

    auto journal =
        synth::CheckpointJournal::create(path, fingerprint, &error);
    ASSERT_NE(journal, nullptr) << error;
    synth::SynthesisOptions opt = small_options(4, 4);
    opt.checkpoint = journal.get();
    const synth::SuiteResult first =
        synth::synthesize_suite(model, "invlpg", opt);
    const std::uint64_t saved = first.scheduler.checkpoint_shards_saved;
    ASSERT_GT(saved, 0u);
    journal.reset();

    {
        // A crash mid-append: a record header with no payload behind it.
        std::ofstream torn(path, std::ios::app | std::ios::binary);
        torn << "shard 12345 1 1 0";
    }
    auto resumed =
        synth::CheckpointJournal::resume(path, fingerprint, &error);
    ASSERT_NE(resumed, nullptr) << error;
    EXPECT_EQ(resumed->loaded(), saved);
    opt.checkpoint = resumed.get();
    const synth::SuiteResult second =
        synth::synthesize_suite(model, "invlpg", opt);
    EXPECT_EQ(suite_fingerprint(second), suite_fingerprint(first));
    std::remove(path.c_str());
}

#if defined(__linux__)
/// The acceptance test for crash safety: SIGKILL the process mid-run (via
/// the kill-kind fault plan), then resume from the journal and get a
/// byte-identical suite.
TEST(Checkpoint, KillMidRunThenResumeIsByteIdentical)
{
    const mtm::Model model = mtm::x86t_elt();
    const std::string path = temp_path("kill.journal");
    const std::string fingerprint = "fault_test kill v1";
    const std::string baseline = suite_fingerprint(
        synth::synthesize_suite(model, "invlpg", small_options(4, 4)));
    ASSERT_FALSE(baseline.empty());

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // In the child: journal the run and die on the third shard
        // boundary. jobs=1 keeps the process-wide `after` skip counter
        // deterministic.
        std::string error;
        auto journal =
            synth::CheckpointJournal::create(path, fingerprint, &error);
        util::FaultPlan plan;
        if (journal == nullptr ||
            !util::FaultPlan::parse(
                "seed=1,site=shard_boundary,kind=kill,rate=1,after=2",
                &plan, &error)) {
            _exit(10);
        }
        synth::SynthesisOptions opt = small_options(4, 4);
        opt.jobs = 1;
        opt.checkpoint = journal.get();
        opt.fault_plan = &plan;
        (void)synth::synthesize_suite(model, "invlpg", opt);
        _exit(11);  // the kill plan should never let us get here
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child exited with " << WEXITSTATUS(status)
        << " instead of dying by signal";
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    std::string error;
    auto resumed =
        synth::CheckpointJournal::resume(path, fingerprint, &error);
    ASSERT_NE(resumed, nullptr) << error;
    EXPECT_GE(resumed->loaded(), 1u);  // the shards finished before the kill
    synth::SynthesisOptions opt = small_options(4, 4);
    opt.jobs = 1;
    opt.checkpoint = resumed.get();
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, "invlpg", opt);
    EXPECT_TRUE(suite.complete);
    EXPECT_GT(suite.scheduler.checkpoint_shards_replayed, 0u);
    EXPECT_EQ(suite_fingerprint(suite), baseline);
    std::remove(path.c_str());
}
#endif  // __linux__

}  // namespace
}  // namespace transform
