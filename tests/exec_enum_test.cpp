/// \file
/// Unit tests for the explicit execution enumerator.
#include <gtest/gtest.h>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "synth/exec_enum.h"

namespace transform::synth {
namespace {

using elt::EventId;
using elt::Execution;
using elt::Program;
using elt::ProgramBuilder;

int
count_executions(const Program& p, bool vm)
{
    int count = 0;
    for_each_execution(p, vm, [&](const Execution&) {
        ++count;
        return true;
    });
    return count;
}

TEST(ExecEnum, AllEmittedExecutionsWellFormed)
{
    const Program p = elt::fixtures::fig10a_ptwalk2().program;
    for_each_execution(p, true, [&](const Execution& e) {
        const auto d = elt::derive(e);
        EXPECT_TRUE(d.well_formed)
            << (d.problems.empty() ? "" : d.problems[0]);
        return true;
    });
}

TEST(ExecEnum, SingleReadHasOneExecution)
{
    // R x (with its own walk): walk reads init; read reads init. One
    // execution.
    ProgramBuilder b;
    b.thread();
    const EventId r = b.R(0);
    b.rptw(r);
    EXPECT_EQ(count_executions(b.build(), true), 1);
}

TEST(ExecEnum, WriteThenReadCounts)
{
    // W x (walk+wdb); R x (hit). Choices: the walk reads init or the Wdb
    // (2; the Wdb preserves the initial mapping, being coherence-first at
    // its PTE location); the read reads init or the write (2); all
    // coherence classes are singletons. => 4 executions.
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(0);
    b.wdb(w);
    b.rptw(w);
    b.R(0);
    const Program p = b.build();
    int count = 0;
    for_each_execution(p, true, [&](const Execution& e) {
        EXPECT_TRUE(elt::derive(e).well_formed);
        ++count;
        return true;
    });
    EXPECT_EQ(count, 4);
}

TEST(ExecEnum, McmSbCounts)
{
    // Classic sb in MCM mode: each read can read init or the other
    // thread's same-location write (2 choices each); writes are alone in
    // their coherence classes. 4 executions.
    ProgramBuilder b;
    b.thread();
    b.W(0);
    b.R(1);
    b.thread();
    b.W(1);
    b.R(0);
    EXPECT_EQ(count_executions(b.build(), false), 4);
}

TEST(ExecEnum, CoherencePermutationsCounted)
{
    // Two writes to the same location in MCM mode: 2 coherence orders.
    ProgramBuilder b;
    b.thread();
    b.W(0);
    b.thread();
    b.W(0);
    EXPECT_EQ(count_executions(b.build(), false), 2);
}

TEST(ExecEnum, HitChoosesAmongLiveWalks)
{
    // Two misses then a hit, all same VA: the hit picks either entry.
    ProgramBuilder b;
    b.thread();
    const EventId r0 = b.R(0);
    b.rptw(r0);
    const EventId r1 = b.R(0);
    b.rptw(r1);
    b.R(0);  // hit
    const Program p = b.build();
    int with_first = 0;
    int with_second = 0;
    for_each_execution(p, true, [&](const Execution& e) {
        const EventId hit = p.thread(0)[2];
        if (e.ptw_src[hit] == p.rptw_of(r0)) {
            ++with_first;
        }
        if (e.ptw_src[hit] == p.rptw_of(r1)) {
            ++with_second;
        }
        return true;
    });
    EXPECT_GT(with_first, 0);
    EXPECT_GT(with_second, 0);
}

TEST(ExecEnum, EarlyStopWorks)
{
    const Program p = elt::fixtures::fig10b_dirtybit3().program;
    int count = 0;
    const bool completed = for_each_execution(p, true, [&](const Execution&) {
        ++count;
        return false;
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(count, 1);
}

TEST(ExecEnum, StatsTrackExecutions)
{
    ProgramBuilder b;
    b.thread();
    const EventId r = b.R(0);
    b.rptw(r);
    ExecEnumStats stats;
    for_each_execution(b.build(), true, [](const Execution&) { return true; },
                       &stats);
    EXPECT_EQ(stats.executions, 1u);
}

TEST(ExecEnum, PtwalkProgramContainsForbiddenWitness)
{
    // Among ptwalk2's executions there must be one whose walk reads the
    // stale initial mapping (the forbidden outcome of Fig. 10a).
    const Execution fixture = elt::fixtures::fig10a_ptwalk2();
    bool found_stale = false;
    for_each_execution(fixture.program, true, [&](const Execution& e) {
        const auto res = elt::resolve_addresses(e);
        for (EventId id = 0; id < e.program.num_events(); ++id) {
            if (e.program.event(id).kind == elt::EventKind::kRead &&
                res.resolved_pa[id] == 0) {
                found_stale = true;  // read resolved through PA a (stale)
            }
        }
        return true;
    });
    EXPECT_TRUE(found_stale);
}

}  // namespace
}  // namespace transform::synth
