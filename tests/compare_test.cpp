/// \file
/// Tests for the section VI-B comparison tool on the reconstructed
/// hand-written suite.
#include <gtest/gtest.h>

#include "compare/compare.h"
#include "elt/derive.h"
#include "mtm/model.h"

namespace transform::compare {
namespace {

TEST(CoatcheckSuite, HasFortyTests)
{
    const auto suite = coatcheck_suite();
    EXPECT_EQ(suite.size(), 40u);
    int ipi = 0;
    for (const HandwrittenElt& t : suite) {
        if (t.uses_unsupported_ipi) {
            ++ipi;
        } else {
            EXPECT_TRUE(t.execution.program.validate().empty()) << t.name;
        }
    }
    EXPECT_EQ(ipi, 9);
}

TEST(CoatcheckSuite, NonIpiTestsAreWellFormedExecutions)
{
    const mtm::Model model = mtm::x86t_elt();
    for (const HandwrittenElt& t : coatcheck_suite()) {
        if (t.uses_unsupported_ipi) {
            continue;
        }
        const auto d = elt::derive(t.execution, model.derive_options());
        EXPECT_TRUE(d.well_formed)
            << t.name << ": " << (d.problems.empty() ? "" : d.problems[0]);
    }
}

TEST(Classify, Ptwalk2IsVerbatim)
{
    const mtm::Model model = mtm::x86t_elt();
    const auto suite = coatcheck_suite();
    const auto comparison = classify(model, suite[0]);  // ptwalk2
    EXPECT_EQ(comparison.category, Category::kVerbatim);
    EXPECT_FALSE(comparison.matched_key.empty());
}

TEST(Classify, Dirtybit3IsReducible)
{
    const mtm::Model model = mtm::x86t_elt();
    for (const HandwrittenElt& t : coatcheck_suite()) {
        if (t.name != "dirtybit3") {
            continue;
        }
        const auto comparison = classify(model, t);
        EXPECT_EQ(comparison.category, Category::kReducible);
        EXPECT_FALSE(comparison.removed.empty());
    }
}

TEST(Classify, ReadOnlyTestIsNotSpanning)
{
    const mtm::Model model = mtm::x86t_elt();
    for (const HandwrittenElt& t : coatcheck_suite()) {
        if (t.name != "sanity-ro1") {
            continue;
        }
        const auto comparison = classify(model, t);
        EXPECT_EQ(comparison.category, Category::kNotSpanning);
    }
}

TEST(Classify, IpiTestsAreFiltered)
{
    const mtm::Model model = mtm::x86t_elt();
    for (const HandwrittenElt& t : coatcheck_suite()) {
        if (!t.uses_unsupported_ipi) {
            continue;
        }
        EXPECT_EQ(classify(model, t).category, Category::kUnsupportedIpi);
    }
}

TEST(CompareSuite, ReproducesSectionViBComposition)
{
    const mtm::Model model = mtm::x86t_elt();
    const ComparisonReport report = compare_suite(model, coatcheck_suite());
    // Paper: 40 tests; 9 unsupported IPIs; 9 not spanning; 22 relevant of
    // which 7 category-1 (matching 4 synthesized programs) and 15
    // category-2.
    EXPECT_EQ(report.tests.size(), 40u);
    EXPECT_EQ(report.unsupported_ipi, 9);
    EXPECT_EQ(report.not_spanning, 9);
    EXPECT_EQ(report.relevant, 22);
    EXPECT_EQ(report.verbatim, 7);
    EXPECT_EQ(report.reducible, 15);
    EXPECT_LE(report.matched_programs, report.verbatim);
    EXPECT_GT(report.matched_programs, 0);
}

TEST(CategoryName, AllNamed)
{
    EXPECT_STRNE(category_name(Category::kUnsupportedIpi), "?");
    EXPECT_STRNE(category_name(Category::kVerbatim), "?");
    EXPECT_STRNE(category_name(Category::kReducible), "?");
    EXPECT_STRNE(category_name(Category::kNotSpanning), "?");
}

}  // namespace
}  // namespace transform::compare
