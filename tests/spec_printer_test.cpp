/// \file
/// Tests for the Alloy-style specification emitter.
#include <gtest/gtest.h>

#include "mtm/model.h"
#include "mtm/spec_printer.h"

namespace transform::mtm {
namespace {

TEST(SpecPrinter, VocabularyMentionsEveryTableIElement)
{
    const std::string vocab = vocabulary_to_alloy();
    for (const char* element :
         {"MemoryEvent", "Read", "Write", "Wpte", "Invlpg", "Rptw", "Wdb",
          "rf_ptw", "rf_pa", "co_pa", "fr_pa", "fr_va", "remap",
          "ptw_source", "po", "address"}) {
        EXPECT_NE(vocab.find(element), std::string::npos)
            << "missing " << element;
    }
}

TEST(SpecPrinter, X86tEltModuleHasEveryAxiom)
{
    const std::string module = model_to_alloy(x86t_elt());
    EXPECT_NE(module.find("module transform/x86t_elt"), std::string::npos);
    for (const std::string& axiom : x86t_elt_axiom_names()) {
        EXPECT_NE(module.find("pred " + axiom), std::string::npos);
    }
    EXPECT_NE(module.find("x86t_elt_predicate"), std::string::npos);
    // The formal bodies.
    EXPECT_NE(module.find("acyclic[rf + co + fr + po_loc]"),
              std::string::npos);
    EXPECT_NE(module.find("acyclic[fr_va + ^po + remap]"), std::string::npos);
    EXPECT_NE(module.find("acyclic[ptw_source + rf + co + fr]"),
              std::string::npos);
    EXPECT_NE(module.find("no (fr.co & rmw)"), std::string::npos);
}

TEST(SpecPrinter, McmModuleLacksVmAxioms)
{
    const std::string module = model_to_alloy(x86tso());
    EXPECT_EQ(module.find("pred invlpg"), std::string::npos);
    EXPECT_EQ(module.find("pred tlb_causality"), std::string::npos);
    EXPECT_NE(module.find("consistency"), std::string::npos);
}

TEST(SpecPrinter, ScVariantUsesFullProgramOrder)
{
    const std::string module = model_to_alloy(sc_t_elt());
    EXPECT_NE(module.find("sequential consistency"), std::string::npos);
}

}  // namespace
}  // namespace transform::mtm
