/// \file
/// Unit tests for canonical program keys (dedup / symmetry reduction).
#include <gtest/gtest.h>

#include "elt/fixtures.h"
#include "synth/canonical.h"

namespace transform::synth {
namespace {

using elt::EventId;
using elt::Execution;
using elt::Program;
using elt::ProgramBuilder;

/// sb with threads in one order...
Program
sb_order_a()
{
    ProgramBuilder b;
    b.thread();
    b.W(0);
    // MCM-style program is invalid for MTM (no ghosts), but canonical keys
    // work on any structurally valid program; build ELT-style instead.
    Program dummy = b.build();
    (void)dummy;
    ProgramBuilder c;
    c.thread();
    const EventId w = c.W(0);
    c.wdb(w);
    c.rptw(w);
    c.thread();
    const EventId r = c.R(1);
    c.rptw(r);
    return c.build();
}

/// ...and with the threads swapped and VAs renamed.
Program
sb_order_b()
{
    ProgramBuilder c;
    c.thread();
    const EventId r = c.R(0);  // the read thread first, reading "x"
    c.rptw(r);
    c.thread();
    const EventId w = c.W(1);  // the write targets "y"
    c.wdb(w);
    c.rptw(w);
    return c.build();
}

TEST(Canonical, ThreadAndVaRenamingInvariance)
{
    EXPECT_EQ(canonical_key(sb_order_a()), canonical_key(sb_order_b()));
}

TEST(Canonical, DifferentProgramsDiffer)
{
    ProgramBuilder a;
    a.thread();
    const EventId w = a.W(0);
    a.wdb(w);
    a.rptw(w);
    ProgramBuilder b;
    b.thread();
    const EventId r = b.R(0);
    b.rptw(r);
    EXPECT_NE(canonical_key(a.build()), canonical_key(b.build()));
}

TEST(Canonical, HitVersusMissDiffer)
{
    // R(miss); R(hit) vs R(miss); R(miss): ghost structure differs.
    ProgramBuilder a;
    a.thread();
    const EventId r0 = a.R(0);
    a.rptw(r0);
    a.R(0);  // hit: no walk
    ProgramBuilder b;
    b.thread();
    const EventId r0b = b.R(0);
    b.rptw(r0b);
    const EventId r1b = b.R(0);
    b.rptw(r1b);
    EXPECT_NE(canonical_key(a.build()), canonical_key(b.build()));
}

TEST(Canonical, PaAliasChoiceMatters)
{
    // Wpte remapping x to its own frame vs to a fresh frame: different
    // programs.
    auto build = [](int target_pa) {
        ProgramBuilder b;
        b.thread();
        const EventId p = b.wpte(0, target_pa);
        b.invlpg_for(p);
        const EventId r = b.R(0);
        b.rptw(r);
        return b.build();
    };
    EXPECT_NE(canonical_key(build(0)), canonical_key(build(1)));
}

TEST(Canonical, FreshPaNumberingIrrelevant)
{
    // Remap x to fresh PA 5 vs fresh PA 1 (with only VA x used, both mean
    // "a frame nothing else maps"): same canonical program.
    auto build = [](int target_pa) {
        ProgramBuilder b;
        b.thread();
        const EventId p = b.wpte(0, target_pa);
        b.invlpg_for(p);
        const EventId r = b.R(0);
        b.rptw(r);
        return b.build();
    };
    EXPECT_EQ(canonical_key(build(1)), canonical_key(build(5)));
}

TEST(Canonical, RmwMarkChangesKey)
{
    auto build = [](bool mark) {
        ProgramBuilder b;
        b.thread();
        const EventId r = b.R(0);
        b.rptw(r);
        const EventId w = b.W(0);
        b.wdb(w);
        if (mark) {
            b.rmw(r, w);
        }
        return b.build();
    };
    EXPECT_NE(canonical_key(build(true)), canonical_key(build(false)));
}

TEST(Canonical, RemapLinkStructurePreserved)
{
    // Spurious INVLPG vs remap-invoked INVLPG (same kinds at same spots)
    // must produce different keys.
    ProgramBuilder a;
    a.thread();
    const EventId p = a.wpte(0, 1);
    a.invlpg_for(p);
    const EventId r = a.R(0);
    a.rptw(r);
    const std::string with_remap = canonical_key(a.build());

    // Same shape but the INVLPG is spurious (requires no Wpte): compare
    // against a program with INVLPG + read only.
    ProgramBuilder b;
    b.thread();
    b.invlpg(0);
    const EventId r2 = b.R(0);
    b.rptw(r2);
    const std::string spurious = canonical_key(b.build());
    EXPECT_NE(with_remap, spurious);
}

TEST(Canonical, KeyStableAcrossCalls)
{
    const Program p = elt::fixtures::fig10a_ptwalk2().program;
    EXPECT_EQ(canonical_key(p), canonical_key(p));
}

TEST(Canonical, SerializeRespectsThreadOrder)
{
    const Program p = sb_order_a();
    const std::string order01 = serialize_with_thread_order(p, {0, 1});
    const std::string order10 = serialize_with_thread_order(p, {1, 0});
    EXPECT_NE(order01, order10);
    const std::string key = canonical_key(p);
    EXPECT_TRUE(key == order01 || key == order10);
    EXPECT_EQ(key, std::min(order01, order10));
}

}  // namespace
}  // namespace transform::synth
