/// \file
/// Property tests for the SAT substrate: parameterized random-instance
/// sweeps against brute force, enumeration completeness on structured
/// formulas, and assumption-driven incremental behaviour.
#include <gtest/gtest.h>

#include <cstdint>

#include "sat/enumerator.h"
#include "sat/solver.h"

namespace transform::sat {
namespace {

/// Deterministic xorshift-style generator (no external seeding).
class Rng {
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}
    std::uint32_t next()
    {
        state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<std::uint32_t>(state_ >> 33);
    }

  private:
    std::uint64_t state_;
};

struct RandomSweep {
    int num_vars;
    int clause_len;
    std::uint64_t seed;
};

class RandomCnf : public ::testing::TestWithParam<RandomSweep> {};

TEST_P(RandomCnf, MatchesBruteForce)
{
    const auto& param = GetParam();
    Rng rng(param.seed);
    for (int trial = 0; trial < 40; ++trial) {
        const int num_clauses = 2 + static_cast<int>(rng.next() % 24);
        std::vector<Clause> clauses;
        for (int c = 0; c < num_clauses; ++c) {
            Clause clause;
            for (int k = 0; k < param.clause_len; ++k) {
                const Var v = static_cast<Var>(rng.next() % param.num_vars);
                clause.push_back(Lit(v, (rng.next() & 1) != 0));
            }
            clauses.push_back(clause);
        }
        bool brute_sat = false;
        for (int assignment = 0; assignment < (1 << param.num_vars);
             ++assignment) {
            bool all = true;
            for (const Clause& clause : clauses) {
                bool any = false;
                for (const Lit l : clause) {
                    const bool value = ((assignment >> l.var()) & 1) != 0;
                    any = any || (value != l.negated());
                }
                all = all && any;
            }
            if (all) {
                brute_sat = true;
                break;
            }
        }
        Solver s;
        for (int v = 0; v < param.num_vars; ++v) {
            s.new_var();
        }
        bool ok = true;
        for (const Clause& clause : clauses) {
            ok = s.add_clause(clause) && ok;
        }
        const bool solver_sat = ok && s.solve() == SolveResult::kSat;
        ASSERT_EQ(solver_sat, brute_sat) << "trial " << trial;
        // When SAT, the model must actually satisfy every clause.
        if (solver_sat) {
            for (const Clause& clause : clauses) {
                bool any = false;
                for (const Lit l : clause) {
                    any = any || s.model_literal_true(l);
                }
                EXPECT_TRUE(any);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RandomCnf,
    ::testing::Values(RandomSweep{5, 2, 11}, RandomSweep{6, 3, 22},
                      RandomSweep{7, 3, 33}, RandomSweep{8, 4, 44},
                      RandomSweep{9, 3, 55}),
    [](const auto& info) {
        return "v" + std::to_string(info.param.num_vars) + "k" +
               std::to_string(info.param.clause_len);
    });

class EnumerationCount : public ::testing::TestWithParam<int> {};

TEST_P(EnumerationCount, CountsModelsOfAtLeastOneTrue)
{
    // "at least one of n vars" has 2^n - 1 models.
    const int n = GetParam();
    Solver s;
    Clause clause;
    std::vector<Var> vars;
    for (int i = 0; i < n; ++i) {
        vars.push_back(s.new_var());
        clause.push_back(Lit(vars.back(), false));
    }
    s.add_clause(clause);
    int count = 0;
    const auto stats =
        enumerate_models(&s, vars, [&](const std::vector<bool>& values) {
            bool any = false;
            for (const bool b : values) {
                any = any || b;
            }
            EXPECT_TRUE(any);
            ++count;
            return true;
        });
    EXPECT_EQ(count, (1 << n) - 1);
    EXPECT_TRUE(stats.exhausted);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EnumerationCount, ::testing::Values(2, 3, 4, 6),
                         [](const auto& info) {
                             return "n" + std::to_string(info.param);
                         });

TEST(SolverIncremental, AssumptionSweepOverPigeons)
{
    // 3 pigeons, 3 holes: satisfiable; forcing any two pigeons into one
    // hole via assumptions is unsatisfiable, and the solver recovers.
    const int n = 3;
    Solver s;
    std::vector<std::vector<Var>> in(n, std::vector<Var>(n));
    for (auto& row : in) {
        for (auto& v : row) {
            v = s.new_var();
        }
    }
    for (int p = 0; p < n; ++p) {
        Clause clause;
        for (int h = 0; h < n; ++h) {
            clause.push_back(Lit(in[p][h], false));
        }
        s.add_clause(clause);
    }
    for (int h = 0; h < n; ++h) {
        for (int p1 = 0; p1 < n; ++p1) {
            for (int p2 = p1 + 1; p2 < n; ++p2) {
                s.add_binary(Lit(in[p1][h], true), Lit(in[p2][h], true));
            }
        }
    }
    EXPECT_EQ(s.solve(), SolveResult::kSat);
    for (int h = 0; h < n; ++h) {
        EXPECT_EQ(s.solve({Lit(in[0][h], false), Lit(in[1][h], false)}),
                  SolveResult::kUnsat);
        EXPECT_FALSE(s.proven_unsat());
    }
    EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SolverStats, CountersAdvance)
{
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    s.add_binary(Lit(a, false), Lit(b, false));
    s.solve();
    EXPECT_GT(s.stats().decisions + s.stats().propagations, 0u);
}

TEST(SolverModels, DistinctModelsViaBlocking)
{
    // Blocking the first model yields a different second one.
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    s.add_binary(Lit(a, false), Lit(b, false));
    ASSERT_EQ(s.solve(), SolveResult::kSat);
    const bool a1 = s.model_value(a) == LBool::kTrue;
    const bool b1 = s.model_value(b) == LBool::kTrue;
    s.add_clause({Lit(a, a1), Lit(b, b1)});
    ASSERT_EQ(s.solve(), SolveResult::kSat);
    const bool a2 = s.model_value(a) == LBool::kTrue;
    const bool b2 = s.model_value(b) == LBool::kTrue;
    EXPECT_TRUE(a1 != a2 || b1 != b2);
}

}  // namespace
}  // namespace transform::sat
