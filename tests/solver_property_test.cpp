/// \file
/// Property tests for the SAT substrate: parameterized random-instance
/// sweeps against brute force, enumeration completeness on structured
/// formulas, and assumption-driven incremental behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sat/enumerator.h"
#include "sat/solver.h"

namespace transform::sat {
namespace {

/// Deterministic xorshift-style generator (no external seeding).
class Rng {
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}
    std::uint32_t next()
    {
        state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<std::uint32_t>(state_ >> 33);
    }

  private:
    std::uint64_t state_;
};

struct RandomSweep {
    int num_vars;
    int clause_len;
    std::uint64_t seed;
};

class RandomCnf : public ::testing::TestWithParam<RandomSweep> {};

TEST_P(RandomCnf, MatchesBruteForce)
{
    const auto& param = GetParam();
    Rng rng(param.seed);
    for (int trial = 0; trial < 40; ++trial) {
        const int num_clauses = 2 + static_cast<int>(rng.next() % 24);
        std::vector<Clause> clauses;
        for (int c = 0; c < num_clauses; ++c) {
            Clause clause;
            for (int k = 0; k < param.clause_len; ++k) {
                const Var v = static_cast<Var>(rng.next() % param.num_vars);
                clause.push_back(Lit(v, (rng.next() & 1) != 0));
            }
            clauses.push_back(clause);
        }
        bool brute_sat = false;
        for (int assignment = 0; assignment < (1 << param.num_vars);
             ++assignment) {
            bool all = true;
            for (const Clause& clause : clauses) {
                bool any = false;
                for (const Lit l : clause) {
                    const bool value = ((assignment >> l.var()) & 1) != 0;
                    any = any || (value != l.negated());
                }
                all = all && any;
            }
            if (all) {
                brute_sat = true;
                break;
            }
        }
        Solver s;
        for (int v = 0; v < param.num_vars; ++v) {
            s.new_var();
        }
        bool ok = true;
        for (const Clause& clause : clauses) {
            ok = s.add_clause(clause) && ok;
        }
        const bool solver_sat = ok && s.solve() == SolveResult::kSat;
        ASSERT_EQ(solver_sat, brute_sat) << "trial " << trial;
        // When SAT, the model must actually satisfy every clause.
        if (solver_sat) {
            for (const Clause& clause : clauses) {
                bool any = false;
                for (const Lit l : clause) {
                    any = any || s.model_literal_true(l);
                }
                EXPECT_TRUE(any);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RandomCnf,
    ::testing::Values(RandomSweep{5, 2, 11}, RandomSweep{6, 3, 22},
                      RandomSweep{7, 3, 33}, RandomSweep{8, 4, 44},
                      RandomSweep{9, 3, 55}),
    [](const auto& info) {
        return "v" + std::to_string(info.param.num_vars) + "k" +
               std::to_string(info.param.clause_len);
    });

class EnumerationCount : public ::testing::TestWithParam<int> {};

TEST_P(EnumerationCount, CountsModelsOfAtLeastOneTrue)
{
    // "at least one of n vars" has 2^n - 1 models.
    const int n = GetParam();
    Solver s;
    Clause clause;
    std::vector<Var> vars;
    for (int i = 0; i < n; ++i) {
        vars.push_back(s.new_var());
        clause.push_back(Lit(vars.back(), false));
    }
    s.add_clause(clause);
    int count = 0;
    const auto stats =
        enumerate_models(&s, vars, [&](const std::vector<bool>& values) {
            bool any = false;
            for (const bool b : values) {
                any = any || b;
            }
            EXPECT_TRUE(any);
            ++count;
            return true;
        });
    EXPECT_EQ(count, (1 << n) - 1);
    EXPECT_TRUE(stats.exhausted);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EnumerationCount, ::testing::Values(2, 3, 4, 6),
                         [](const auto& info) {
                             return "n" + std::to_string(info.param);
                         });

TEST(SolverIncremental, AssumptionSweepOverPigeons)
{
    // 3 pigeons, 3 holes: satisfiable; forcing any two pigeons into one
    // hole via assumptions is unsatisfiable, and the solver recovers.
    const int n = 3;
    Solver s;
    std::vector<std::vector<Var>> in(n, std::vector<Var>(n));
    for (auto& row : in) {
        for (auto& v : row) {
            v = s.new_var();
        }
    }
    for (int p = 0; p < n; ++p) {
        Clause clause;
        for (int h = 0; h < n; ++h) {
            clause.push_back(Lit(in[p][h], false));
        }
        s.add_clause(clause);
    }
    for (int h = 0; h < n; ++h) {
        for (int p1 = 0; p1 < n; ++p1) {
            for (int p2 = p1 + 1; p2 < n; ++p2) {
                s.add_binary(Lit(in[p1][h], true), Lit(in[p2][h], true));
            }
        }
    }
    EXPECT_EQ(s.solve(), SolveResult::kSat);
    for (int h = 0; h < n; ++h) {
        EXPECT_EQ(s.solve({Lit(in[0][h], false), Lit(in[1][h], false)}),
                  SolveResult::kUnsat);
        EXPECT_FALSE(s.proven_unsat());
    }
    EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(SolverStats, CountersAdvance)
{
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    s.add_binary(Lit(a, false), Lit(b, false));
    s.solve();
    EXPECT_GT(s.stats().decisions + s.stats().propagations, 0u);
}

TEST(SolverModels, DistinctModelsViaBlocking)
{
    // Blocking the first model yields a different second one.
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    s.add_binary(Lit(a, false), Lit(b, false));
    ASSERT_EQ(s.solve(), SolveResult::kSat);
    const bool a1 = s.model_value(a) == LBool::kTrue;
    const bool b1 = s.model_value(b) == LBool::kTrue;
    s.add_clause({Lit(a, a1), Lit(b, b1)});
    ASSERT_EQ(s.solve(), SolveResult::kSat);
    const bool a2 = s.model_value(a) == LBool::kTrue;
    const bool b2 = s.model_value(b) == LBool::kTrue;
    EXPECT_TRUE(a1 != a2 || b1 != b2);
}

// ---------------------------------------------------------------------------
// Incremental-session properties: activation-guarded clause groups under
// rotating assumption subsets, AllSAT continuation via block_and_resolve,
// guard retirement, and assumption-prefix trail reuse — each checked
// against a from-scratch reference solver. Models may legitimately differ
// between the live and fresh solvers (heuristic state diverges), so the
// properties are verdict agreement, model validity, and projected-model
// multiset equality — never model equality.
// ---------------------------------------------------------------------------

/// Builds `count` random clauses of length 3 over vars [0, num_vars).
std::vector<Clause>
random_clauses(Rng* rng, int num_vars, int count)
{
    std::vector<Clause> clauses;
    for (int c = 0; c < count; ++c) {
        Clause clause;
        for (int k = 0; k < 3; ++k) {
            const Var v = static_cast<Var>(rng->next() % num_vars);
            clause.push_back(Lit(v, (rng->next() & 1) != 0));
        }
        clauses.push_back(clause);
    }
    return clauses;
}

bool
clause_satisfied(const Clause& clause, const Solver& s)
{
    for (const Lit l : clause) {
        if (s.model_literal_true(l)) {
            return true;
        }
    }
    return false;
}

TEST(SolverIncremental, GuardedGroupsUnderRotatingActivationsMatchFresh)
{
    for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
        Rng rng(seed);
        const int num_vars = 10;
        const int num_guards = 4;
        Solver live;
        for (int v = 0; v < num_vars; ++v) {
            live.new_var();
        }
        const std::vector<Clause> base = random_clauses(&rng, num_vars, 12);
        for (const Clause& c : base) {
            live.add_clause(c);
        }
        std::vector<Lit> guards;
        std::vector<std::vector<Clause>> groups;
        for (int g = 0; g < num_guards; ++g) {
            guards.push_back(Lit(live.new_var(), false));
            groups.push_back(random_clauses(&rng, num_vars, 4));
            for (const Clause& c : groups.back()) {
                Clause guarded = c;
                guarded.push_back(~guards.back());
                live.add_clause(guarded);
            }
        }
        std::vector<bool> retired(num_guards, false);
        for (int round = 0; round < 30; ++round) {
            // Retire a live guard every few rounds; a retired guard can
            // never activate again.
            if (round % 7 == 6) {
                const int g = static_cast<int>(rng.next()) % num_guards;
                if (!retired[g]) {
                    retired[g] = true;
                    ASSERT_TRUE(live.retire_activation(guards[g]));
                    EXPECT_EQ(live.solve({guards[g]}), SolveResult::kUnsat);
                    EXPECT_FALSE(live.proven_unsat());
                }
            }
            std::vector<Lit> assumptions;
            std::vector<int> active;
            for (int g = 0; g < num_guards; ++g) {
                if (!retired[g] && (rng.next() & 1) != 0) {
                    assumptions.push_back(guards[g]);
                    active.push_back(g);
                }
            }
            // Fresh reference: base plus the active groups, unguarded.
            Solver fresh;
            for (int v = 0; v < num_vars; ++v) {
                fresh.new_var();
            }
            bool fresh_ok = true;
            for (const Clause& c : base) {
                fresh_ok = fresh.add_clause(c) && fresh_ok;
            }
            for (const int g : active) {
                for (const Clause& c : groups[g]) {
                    fresh_ok = fresh.add_clause(c) && fresh_ok;
                }
            }
            const bool fresh_sat =
                fresh_ok && fresh.solve() == SolveResult::kSat;
            const SolveResult live_verdict = live.solve(assumptions);
            ASSERT_EQ(live_verdict == SolveResult::kSat, fresh_sat)
                << "seed=" << seed << " round=" << round;
            if (live_verdict == SolveResult::kSat) {
                for (const Clause& c : base) {
                    EXPECT_TRUE(clause_satisfied(c, live));
                }
                for (const int g : active) {
                    for (const Clause& c : groups[g]) {
                        EXPECT_TRUE(clause_satisfied(c, live));
                    }
                }
            }
        }
    }
}

/// Enumerates every model of `s` under `assumptions`, projected onto
/// `projection`, continuing via block_and_resolve with the blocking
/// clause guarded on the final assumption literal (the incremental
/// session's activation pattern). Returns the projected models, sorted.
std::vector<std::vector<bool>>
enumerate_projected(Solver* s, const std::vector<Lit>& assumptions,
                    const std::vector<Var>& projection)
{
    std::vector<std::vector<bool>> models;
    const Lit act = assumptions.back();
    SolveResult verdict = s->solve(assumptions);
    while (verdict == SolveResult::kSat) {
        std::vector<bool> projected;
        Clause blocking;
        for (const Var v : projection) {
            const bool value = s->model_value(v) == LBool::kTrue;
            projected.push_back(value);
            blocking.push_back(Lit(v, value));  // falsified literal
        }
        models.push_back(projected);
        blocking.push_back(~act);
        verdict = s->block_and_resolve(blocking.data(), blocking.size(),
                                       assumptions);
    }
    std::sort(models.begin(), models.end());
    return models;
}

/// From-scratch reference enumeration: a fresh solver per call, pins as
/// unit clauses, plain unguarded blocking clauses.
std::vector<std::vector<bool>>
enumerate_fresh(const std::vector<Clause>& clauses, int num_vars,
                const std::vector<Lit>& pins,
                const std::vector<Var>& projection)
{
    Solver s;
    for (int v = 0; v < num_vars; ++v) {
        s.new_var();
    }
    bool ok = true;
    for (const Clause& c : clauses) {
        ok = s.add_clause(c) && ok;
    }
    for (const Lit pin : pins) {
        ok = s.add_unit(pin) && ok;
    }
    std::vector<std::vector<bool>> models;
    while (ok && s.solve() == SolveResult::kSat) {
        std::vector<bool> projected;
        Clause blocking;
        for (const Var v : projection) {
            const bool value = s.model_value(v) == LBool::kTrue;
            projected.push_back(value);
            blocking.push_back(Lit(v, value));
        }
        models.push_back(projected);
        if (!s.add_clause(blocking)) {
            break;
        }
    }
    std::sort(models.begin(), models.end());
    return models;
}

TEST(SolverIncremental, BlockAndResolveEnumerationMatchesFreshPerRound)
{
    for (const std::uint64_t seed : {5ull, 17ull, 91ull}) {
        Rng rng(seed);
        const int num_vars = 8;
        const std::vector<Var> projection{0, 1, 2, 3};
        Solver live;
        for (int v = 0; v < num_vars; ++v) {
            live.new_var();
        }
        const std::vector<Clause> base = random_clauses(&rng, num_vars, 14);
        bool ok = true;
        for (const Clause& c : base) {
            ok = live.add_clause(c) && ok;
        }
        ASSERT_TRUE(ok);
        // Rounds mirror the incremental session: per-round pins (an
        // assumption-prefix that overlaps between consecutive rounds,
        // exercising the planted-trail reuse), previously spent guards
        // assumed false, and a fresh activation guard assumed last.
        std::vector<Lit> spent;
        for (int round = 0; round < 20; ++round) {
            std::vector<Lit> pins;
            pins.push_back(Lit(4, (rng.next() & 3) == 0));
            pins.push_back(Lit(5, (rng.next() & 1) != 0));
            const Lit act(live.new_var(), false);
            std::vector<Lit> assumptions = pins;
            for (const Lit s : spent) {
                assumptions.push_back(~s);
            }
            assumptions.push_back(act);
            const auto live_models =
                enumerate_projected(&live, assumptions, projection);
            const auto fresh_models =
                enumerate_fresh(base, num_vars, pins, projection);
            EXPECT_EQ(live_models, fresh_models)
                << "seed=" << seed << " round=" << round;
            // Alternate the two guard-disposal mechanisms the session
            // uses: permanent retirement and deferred assume-false.
            if ((round & 1) != 0) {
                ASSERT_TRUE(live.retire_activation(act));
            } else {
                spent.push_back(act);
            }
        }
    }
}

TEST(SolverIncremental, EnumerationStaysExactAfterReduceDb)
{
    // Phase 1: a rescued pigeonhole instance — UNSAT under the assumption
    // ~rescue — forces thousands of conflicts through the same solver,
    // enough to engage learned-clause database reduction.
    const int holes = 7;
    Solver live;
    std::vector<std::vector<Var>> in(holes + 1, std::vector<Var>(holes));
    for (auto& row : in) {
        for (auto& v : row) {
            v = live.new_var();
        }
    }
    const Lit rescue(live.new_var(), false);
    for (int p = 0; p <= holes; ++p) {
        Clause clause;
        for (int h = 0; h < holes; ++h) {
            clause.push_back(Lit(in[p][h], false));
        }
        clause.push_back(rescue);
        live.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h) {
        for (int p1 = 0; p1 <= holes; ++p1) {
            for (int p2 = p1 + 1; p2 <= holes; ++p2) {
                live.add_binary(Lit(in[p1][h], true), Lit(in[p2][h], true));
            }
        }
    }
    ASSERT_EQ(live.solve({~rescue}), SolveResult::kUnsat);
    ASSERT_FALSE(live.proven_unsat());
    ASSERT_GT(live.stats().deleted_clauses, 0u)
        << "instance too easy: reduce_db never engaged";

    // Phase 2: guarded enumeration rounds over a small playground added
    // to the same (now clause-heavy) solver must still match a fresh
    // reference exactly.
    Rng rng(7);
    const Var play_base = live.new_var();
    for (int v = 1; v < 6; ++v) {
        live.new_var();
    }
    std::vector<Clause> play = random_clauses(&rng, 6, 8);
    for (Clause& c : play) {
        for (Lit& l : c) {
            l = Lit(static_cast<Var>(l.var() + play_base), l.negated());
        }
    }
    bool ok = true;
    for (const Clause& c : play) {
        ok = live.add_clause(c) && ok;
    }
    ASSERT_TRUE(ok);
    const std::vector<Var> projection{play_base, static_cast<Var>(play_base + 1),
                                      static_cast<Var>(play_base + 2)};
    for (int round = 0; round < 6; ++round) {
        const std::vector<Lit> pins{
            rescue, Lit(static_cast<Var>(play_base + 4), (rng.next() & 1) != 0)};
        const Lit act(live.new_var(), false);
        std::vector<Lit> assumptions = pins;
        assumptions.push_back(act);
        const auto live_models =
            enumerate_projected(&live, assumptions, projection);
        // The fresh reference sees the playground plus the (satisfied)
        // pigeonhole side: with rescue pinned true those clauses are
        // vacuous, so enumerate only the playground.
        std::vector<Clause> reference = play;
        std::vector<Lit> reference_pins;
        for (const Lit pin : pins) {
            if (pin.var() >= play_base) {
                reference_pins.push_back(pin);
            }
        }
        // Project the reference onto the playground's variable space.
        Solver fresh;
        for (int v = 0; v < live.num_vars(); ++v) {
            fresh.new_var();
        }
        bool fok = true;
        for (const Clause& c : reference) {
            fok = fresh.add_clause(c) && fok;
        }
        for (const Lit pin : reference_pins) {
            fok = fresh.add_unit(pin) && fok;
        }
        std::vector<std::vector<bool>> fresh_models;
        while (fok && fresh.solve() == SolveResult::kSat) {
            std::vector<bool> projected;
            Clause blocking;
            for (const Var v : projection) {
                const bool value = fresh.model_value(v) == LBool::kTrue;
                projected.push_back(value);
                blocking.push_back(Lit(v, value));
            }
            fresh_models.push_back(projected);
            if (!fresh.add_clause(blocking)) {
                break;
            }
        }
        std::sort(fresh_models.begin(), fresh_models.end());
        EXPECT_EQ(live_models, fresh_models) << "round " << round;
        ASSERT_TRUE(live.retire_activation(act));
    }
}

TEST(SolverIncremental, PrefixReuseAgreesWithFreshVerdicts)
{
    // Alternating assumption vectors that share prefixes of varying
    // length (including the empty prefix of a no-assumption solve): every
    // verdict must match a from-scratch solver given the assumptions as
    // units.
    for (const std::uint64_t seed : {3ull, 29ull}) {
        Rng rng(seed);
        const int num_vars = 9;
        Solver live;
        for (int v = 0; v < num_vars; ++v) {
            live.new_var();
        }
        const std::vector<Clause> base = random_clauses(&rng, num_vars, 16);
        bool ok = true;
        for (const Clause& c : base) {
            ok = live.add_clause(c) && ok;
        }
        if (!ok) {
            continue;  // degenerate draw: trivially unsat at level 0
        }
        std::vector<Lit> previous;
        for (int round = 0; round < 40; ++round) {
            std::vector<Lit> assumptions;
            // Keep a random-length prefix of the previous vector, then
            // extend with fresh random literals over distinct variables.
            if (!previous.empty()) {
                const std::size_t keep = rng.next() % (previous.size() + 1);
                assumptions.assign(previous.begin(),
                                   previous.begin() + keep);
            }
            while (assumptions.size() < 3) {
                const Var v = static_cast<Var>(rng.next() % num_vars);
                bool used = false;
                for (const Lit l : assumptions) {
                    used = used || l.var() == v;
                }
                if (!used) {
                    assumptions.push_back(Lit(v, (rng.next() & 1) != 0));
                }
            }
            const bool live_sat =
                live.solve(assumptions) == SolveResult::kSat;
            if (live_sat) {
                for (const Lit l : assumptions) {
                    EXPECT_TRUE(live.model_literal_true(l));
                }
                for (const Clause& c : base) {
                    EXPECT_TRUE(clause_satisfied(c, live));
                }
            }
            Solver fresh;
            for (int v = 0; v < num_vars; ++v) {
                fresh.new_var();
            }
            bool fok = true;
            for (const Clause& c : base) {
                fok = fresh.add_clause(c) && fok;
            }
            for (const Lit l : assumptions) {
                fok = fresh.add_unit(l) && fok;
            }
            const bool fresh_sat =
                fok && fresh.solve() == SolveResult::kSat;
            ASSERT_EQ(live_sat, fresh_sat)
                << "seed=" << seed << " round=" << round;
            previous = assumptions;
            if (round % 9 == 8) {
                // Interleave a no-assumption solve (the historical entry
                // point) to force a from-root restart of the reuse state.
                Solver plain;
                for (int v = 0; v < num_vars; ++v) {
                    plain.new_var();
                }
                bool pok = true;
                for (const Clause& c : base) {
                    pok = plain.add_clause(c) && pok;
                }
                const bool plain_sat =
                    pok && plain.solve() == SolveResult::kSat;
                ASSERT_EQ(live.solve() == SolveResult::kSat, plain_sat);
            }
        }
    }
}

}  // namespace
}  // namespace transform::sat
