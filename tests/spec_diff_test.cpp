/// \file
/// Differential synthesis tests for the `.mtm` frontend: the hardwired
/// models and their DSL twins must synthesize byte-identical suites
/// (canonical keys + sizes) on BOTH backends and at every worker count —
/// the engine, the scheduler and the dedup index treat a compiled model
/// exactly like a hardwired one. Also the zoo smoke: every registry model
/// synthesizes end-to-end and the new (non-twin) models produce non-empty
/// suites.
#include <gtest/gtest.h>

#include <sstream>

#include "mtm/model.h"
#include "spec/registry.h"
#include "synth/engine.h"

namespace transform::spec {
namespace {

mtm::Model
zoo_model(const std::string& name)
{
    std::string error;
    const auto resolved = resolve_model(name, &error);
    EXPECT_TRUE(resolved.has_value()) << error;
    return resolved->model;
}

/// Canonical keys + sizes (and per-suite axiom + count) of every suite —
/// the backend-independent identity of a synthesized test set.
std::string
key_fingerprint(const std::vector<synth::SuiteResult>& suites)
{
    std::ostringstream out;
    for (const synth::SuiteResult& suite : suites) {
        out << suite.axiom << ":" << suite.tests.size() << "\n";
        for (const synth::SynthesizedTest& test : suite.tests) {
            out << test.size << " " << test.canonical_key << "\n";
        }
    }
    return out.str();
}

/// As key_fingerprint plus the violated-axiom lists — identical for the
/// enumerative backend, where twins visit executions in the same order.
std::string
full_fingerprint(const std::vector<synth::SuiteResult>& suites)
{
    std::ostringstream out;
    for (const synth::SuiteResult& suite : suites) {
        out << key_fingerprint({suite});
        for (const synth::SynthesizedTest& test : suite.tests) {
            for (const std::string& v : test.violated) {
                out << v << " ";
            }
            out << "\n";
        }
    }
    return out.str();
}

std::vector<synth::SuiteResult>
synthesize(const mtm::Model& model, synth::Backend backend, int jobs,
           int bound)
{
    synth::SynthesisOptions options;
    options.min_bound = model.vm_aware() ? 4 : 2;
    options.bound = bound;
    options.backend = backend;
    options.jobs = jobs;
    return synth::synthesize_all_parallel(model, options);
}

void
expect_twin_suites_identical(const mtm::Model& builtin,
                             const mtm::Model& twin, int bound)
{
    const auto reference =
        synthesize(builtin, synth::Backend::kEnumerative, 1, bound);
    const std::string reference_keys = key_fingerprint(reference);
    const std::string reference_full = full_fingerprint(reference);
    EXPECT_NE(reference_keys.find("\n"), std::string::npos);
    for (const synth::Backend backend :
         {synth::Backend::kEnumerative, synth::Backend::kSat}) {
        for (const int jobs : {1, 2, 4}) {
            const auto twin_suites = synthesize(twin, backend, jobs, bound);
            EXPECT_EQ(key_fingerprint(twin_suites), reference_keys)
                << "backend=" << static_cast<int>(backend)
                << " jobs=" << jobs;
            if (backend == synth::Backend::kEnumerative) {
                // Same enumeration order => the whole suite (violated
                // lists included) is byte-identical, not just the keys.
                EXPECT_EQ(full_fingerprint(twin_suites), reference_full)
                    << "jobs=" << jobs;
            }
        }
    }
    // And the builtin's SAT backend agrees with its own reference too
    // (guards the twin comparison against a backend-wide regression).
    EXPECT_EQ(key_fingerprint(
                  synthesize(builtin, synth::Backend::kSat, 2, bound)),
              reference_keys);
}

TEST(SpecDiff, X86TsoTwinSuitesIdentical)
{
    expect_twin_suites_identical(mtm::x86tso(), zoo_model("x86tso.mtm"),
                                 /*bound=*/4);
}

TEST(SpecDiff, X86tEltTwinSuitesIdentical)
{
    expect_twin_suites_identical(mtm::x86t_elt(), zoo_model("x86t_elt.mtm"),
                                 /*bound=*/4);
}

TEST(SpecDiff, ScTEltTwinSuitesIdentical)
{
    expect_twin_suites_identical(mtm::sc_t_elt(), zoo_model("sc_t_elt.mtm"),
                                 /*bound=*/4);
}

TEST(SpecDiff, ZooModelsSynthesizeNonEmptySuites)
{
    // The acceptance bar: every zoo model runs end-to-end through --model
    // resolution + the parallel engine, and the new (non-twin) models all
    // find tests. Per-axiom expectations pin the semantic deltas: a
    // weakened axiom must not grow its own suite at this bound.
    int non_twin_nonempty = 0;
    for (const RegistryEntry& entry : registry_entries()) {
        const mtm::Model model = zoo_model(entry.name);
        const auto suites =
            synthesize(model, synth::Backend::kEnumerative, 2, 4);
        EXPECT_EQ(suites.size(), model.axioms().size()) << entry.name;
        std::size_t total = 0;
        for (const synth::SuiteResult& suite : suites) {
            EXPECT_TRUE(suite.complete) << entry.name;
            total += suite.tests.size();
        }
        EXPECT_GT(total, 0u) << entry.name;
        const bool twin = std::string(entry.name) == "x86tso.mtm" ||
                          std::string(entry.name) == "x86t_elt.mtm" ||
                          std::string(entry.name) == "sc_t_elt.mtm";
        if (!twin && total > 0) {
            ++non_twin_nonempty;
        }
    }
    EXPECT_GE(non_twin_nonempty, 4);
}

TEST(SpecDiff, WeakenedModelsShrinkTheirSuites)
{
    // pso relaxes W->W on top of TSO: its causality suite is a strict
    // subset of x86tso's at the same bound.
    const auto tso = synthesize(mtm::x86tso(), synth::Backend::kEnumerative,
                                1, 4);
    const auto pso =
        synthesize(zoo_model("pso"), synth::Backend::kEnumerative, 1, 4);
    ASSERT_EQ(tso.size(), pso.size());
    for (std::size_t i = 0; i < tso.size(); ++i) {
        EXPECT_LE(pso[i].tests.size(), tso[i].tests.size()) << tso[i].axiom;
    }
    EXPECT_LT(pso[2].tests.size(), tso[2].tests.size());  // causality
}

}  // namespace
}  // namespace transform::spec
