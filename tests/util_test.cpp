/// \file
/// Unit tests for the util substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/hash.h"
#include "util/permutations.h"
#include "util/stopwatch.h"
#include "util/strings.h"

namespace transform::util {
namespace {

TEST(Strings, JoinBasics)
{
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"a"}, ","), "a");
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleToken)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("\t\n x y \n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(starts_with("abcdef", "abc"));
    EXPECT_TRUE(starts_with("abc", ""));
    EXPECT_FALSE(starts_with("ab", "abc"));
}

TEST(Strings, XmlEscape)
{
    EXPECT_EQ(xml_escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
    EXPECT_EQ(xml_escape("plain"), "plain");
}

TEST(Strings, PadRight)
{
    EXPECT_EQ(pad_right("ab", 4), "ab  ");
    EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

TEST(Permutations, CountsFactorial)
{
    int count = 0;
    for_each_permutation(4, [&](const std::vector<int>&) {
        ++count;
        return true;
    });
    EXPECT_EQ(count, 24);
}

TEST(Permutations, EarlyStop)
{
    int count = 0;
    const bool completed = for_each_permutation(4, [&](const std::vector<int>&) {
        ++count;
        return count < 5;
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(count, 5);
}

TEST(Permutations, PartitionsOfFive)
{
    // Partitions of 5 into at most 2 parts: 5, 4+1, 3+2 => 3 of them.
    int count = 0;
    for_each_partition(5, 2, [&](const std::vector<int>& parts) {
        int sum = 0;
        for (int p : parts) {
            sum += p;
        }
        EXPECT_EQ(sum, 5);
        ++count;
    });
    EXPECT_EQ(count, 3);
}

TEST(Permutations, SubsetsBySizeVisitsAll)
{
    std::set<std::vector<int>> seen;
    for_each_subset_by_size(3, [&](const std::vector<int>& subset) {
        seen.insert(subset);
        return true;
    });
    EXPECT_EQ(seen.size(), 7u);  // 2^3 - 1 non-empty subsets
}

TEST(Permutations, SubsetsSmallestFirst)
{
    std::vector<std::size_t> sizes;
    for_each_subset_by_size(3, [&](const std::vector<int>& subset) {
        sizes.push_back(subset.size());
        return true;
    });
    EXPECT_TRUE(std::is_sorted(sizes.begin(), sizes.end()));
}

TEST(Hash, CombineChangesSeed)
{
    std::size_t a = 0;
    hash_combine(a, 1);
    std::size_t b = 0;
    hash_combine(b, 2);
    EXPECT_NE(a, b);
}

TEST(Hash, RangeOrderSensitive)
{
    const std::vector<int> v1{1, 2, 3};
    const std::vector<int> v2{3, 2, 1};
    EXPECT_NE(hash_range(v1), hash_range(v2));
}

TEST(Stopwatch, MeasuresNonNegative)
{
    Stopwatch w;
    EXPECT_GE(w.elapsed_seconds(), 0.0);
    w.restart();
    EXPECT_GE(w.elapsed_ms(), 0.0);
}

TEST(Deadline, UnlimitedNeverExpires)
{
    Deadline d(0.0);
    EXPECT_FALSE(d.expired());
    EXPECT_TRUE(std::isinf(d.remaining_seconds()));
}

TEST(Deadline, TinyBudgetExpires)
{
    Deadline d(1e-9);
    // Busy-wait a moment (unsigned: the sum overflows int, which UBSan
    // rightly rejects).
    unsigned sink = 0;
    for (unsigned i = 0; i < 100000; ++i) {
        sink += i;
    }
    EXPECT_NE(sink, 0u);  // keep the loop observable
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.remaining_seconds(), 0.0);
}

}  // namespace
}  // namespace transform::util
