/// \file
/// Tests for the parallel synthesis runtime: the work-stealing pool, the
/// sharded canonical-key index, and the engine-level determinism contract —
/// a multi-threaded synthesize_suite run yields the exact same canonical
/// suite (keys, order, witnesses) as jobs=1, on both backends.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "elt/serialize.h"
#include "mtm/model.h"
#include "sched/scheduler.h"
#include "sched/sharded_index.h"
#include "synth/engine.h"

namespace transform {
namespace {

TEST(ResolveJobs, ZeroMeansHardwareConcurrency)
{
    const unsigned hw = std::thread::hardware_concurrency();
    EXPECT_EQ(sched::resolve_jobs(0), hw == 0 ? 1 : static_cast<int>(hw));
    EXPECT_EQ(sched::resolve_jobs(1), 1);
    EXPECT_EQ(sched::resolve_jobs(7), 7);
    EXPECT_EQ(sched::resolve_jobs(-3), sched::resolve_jobs(0));
}

TEST(WorkStealingPool, RunsEveryJobExactlyOnce)
{
    for (const int workers : {1, 2, 4, 8}) {
        sched::WorkStealingPool pool(workers);
        EXPECT_EQ(pool.workers(), workers);
        constexpr int kJobs = 500;
        std::vector<std::atomic<int>> runs(kJobs);
        std::vector<sched::WorkStealingPool::Job> jobs;
        for (int i = 0; i < kJobs; ++i) {
            jobs.push_back([&runs, i, workers](int worker) {
                EXPECT_GE(worker, 0);
                EXPECT_LT(worker, workers);
                runs[static_cast<std::size_t>(i)].fetch_add(1);
            });
        }
        pool.run_batch(std::move(jobs));
        for (int i = 0; i < kJobs; ++i) {
            EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << i;
        }
        const sched::SchedulerStats stats = pool.stats();
        EXPECT_EQ(stats.workers, workers);
        EXPECT_EQ(stats.jobs_run, static_cast<std::uint64_t>(kJobs));
        EXPECT_EQ(stats.jobs_stolen >= stats.steals || stats.steals == 0,
                  true);
    }
}

TEST(WorkStealingPool, EmptyBatchIsANoOp)
{
    sched::WorkStealingPool pool(4);
    pool.run_batch({});
    EXPECT_EQ(pool.stats().jobs_run, 0u);
}

TEST(WorkStealingPool, UnevenJobsAllComplete)
{
    // A few heavy jobs seeded onto one deque force stealing to finish the
    // batch; completion (not the steal count, which is timing-dependent) is
    // the contract.
    sched::WorkStealingPool pool(4);
    std::atomic<std::uint64_t> total{0};
    std::vector<sched::WorkStealingPool::Job> jobs;
    for (int i = 0; i < 64; ++i) {
        jobs.push_back([&total, i](int) {
            std::uint64_t spins = (i % 16 == 0) ? 200000 : 100;
            volatile std::uint64_t sink = 0;
            for (std::uint64_t s = 0; s < spins; ++s) {
                sink += s;
            }
            total.fetch_add(1);
        });
    }
    pool.run_batch(std::move(jobs));
    EXPECT_EQ(total.load(), 64u);
}

TEST(ShardedKeyIndex, RecordKeepsMinimumTicket)
{
    sched::ShardedKeyIndex index(8);
    EXPECT_EQ(index.stripes(), 8);

    auto first = index.record("k", 42);
    EXPECT_TRUE(first.inserted);
    EXPECT_TRUE(first.is_min);
    EXPECT_EQ(first.min_ticket, 42u);

    auto higher = index.record("k", 99);
    EXPECT_FALSE(higher.inserted);
    EXPECT_FALSE(higher.is_min);
    EXPECT_EQ(higher.min_ticket, 42u);

    auto lower = index.record("k", 7);
    EXPECT_FALSE(lower.inserted);
    EXPECT_TRUE(lower.is_min);
    EXPECT_EQ(lower.min_ticket, 7u);

    EXPECT_EQ(index.min_ticket("k"), 7u);
    EXPECT_EQ(index.hits(), 2u);
    EXPECT_EQ(index.size(), 1u);
}

TEST(ShardedKeyIndex, ConcurrentRecordsConvergeToGlobalMinimum)
{
    sched::ShardedKeyIndex index(16);
    constexpr int kKeys = 50;
    constexpr int kThreads = 8;
    {
        std::vector<std::jthread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&index, t] {
                for (int k = 0; k < kKeys; ++k) {
                    index.record("key" + std::to_string(k),
                                 static_cast<std::uint64_t>(100 * k + t));
                }
            });
        }
    }
    EXPECT_EQ(index.size(), static_cast<std::size_t>(kKeys));
    EXPECT_EQ(index.hits(),
              static_cast<std::uint64_t>(kKeys * (kThreads - 1)));
    for (int k = 0; k < kKeys; ++k) {
        EXPECT_EQ(index.min_ticket("key" + std::to_string(k)),
                  static_cast<std::uint64_t>(100 * k));
    }
}

synth::SynthesisOptions
suite_options(int bound, int jobs, synth::Backend backend)
{
    synth::SynthesisOptions opt;
    opt.min_bound = 4;
    opt.bound = bound;
    opt.jobs = jobs;
    opt.backend = backend;
    return opt;
}

/// Serializes a suite to the parts the determinism contract covers: keys,
/// order, witnesses, sizes, violated lists (not counters or timing).
std::string
suite_fingerprint(const synth::SuiteResult& suite)
{
    std::string fp;
    for (const synth::SynthesizedTest& test : suite.tests) {
        fp += test.canonical_key;
        fp += '|';
        fp += std::to_string(test.size);
        for (const std::string& axiom : test.violated) {
            fp += ',';
            fp += axiom;
        }
        fp += '|';
        fp += elt::execution_to_xml(test.witness, "w");
        fp += '\n';
    }
    return fp;
}

TEST(SchedDeterminism, EnumerativeSuiteIdenticalAcrossJobCounts)
{
    const mtm::Model model = mtm::x86t_elt();
    for (const std::string axiom : {"sc_per_loc", "invlpg", "tlb_causality"}) {
        const synth::SuiteResult reference = synth::synthesize_suite(
            model, axiom, suite_options(5, 1, synth::Backend::kEnumerative));
        EXPECT_TRUE(reference.complete);
        EXPECT_FALSE(reference.tests.empty()) << axiom;
        for (const int jobs : {2, 4}) {
            const synth::SuiteResult parallel = synth::synthesize_suite(
                model, axiom,
                suite_options(5, jobs, synth::Backend::kEnumerative));
            EXPECT_EQ(suite_fingerprint(reference),
                      suite_fingerprint(parallel))
                << axiom << " with jobs=" << jobs;
        }
    }
}

TEST(SchedDeterminism, SatBackendSuiteIdenticalAcrossJobCounts)
{
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult reference = synth::synthesize_suite(
        model, "invlpg", suite_options(4, 1, synth::Backend::kSat));
    EXPECT_FALSE(reference.tests.empty());
    const synth::SuiteResult parallel = synth::synthesize_suite(
        model, "invlpg", suite_options(4, 4, synth::Backend::kSat));
    EXPECT_EQ(suite_fingerprint(reference), suite_fingerprint(parallel));
}

TEST(SchedDeterminism, BackendsAgreeUnderParallelism)
{
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult enumerative = synth::synthesize_suite(
        model, "invlpg", suite_options(4, 4, synth::Backend::kEnumerative));
    const synth::SuiteResult sat = synth::synthesize_suite(
        model, "invlpg", suite_options(4, 4, synth::Backend::kSat));
    std::set<std::string> enum_keys;
    std::set<std::string> sat_keys;
    for (const auto& t : enumerative.tests) {
        enum_keys.insert(t.canonical_key);
    }
    for (const auto& t : sat.tests) {
        sat_keys.insert(t.canonical_key);
    }
    EXPECT_EQ(enum_keys, sat_keys);
}

TEST(SchedDeterminism, SuiteIsSortedByCanonicalKey)
{
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult suite = synth::synthesize_suite(
        model, "sc_per_loc",
        suite_options(5, 4, synth::Backend::kEnumerative));
    for (std::size_t i = 1; i < suite.tests.size(); ++i) {
        EXPECT_LT(suite.tests[i - 1].canonical_key,
                  suite.tests[i].canonical_key);
    }
}

TEST(SchedDeterminism, HardwareConcurrencyJobsProducesSameSuite)
{
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult reference = synth::synthesize_suite(
        model, "rmw_atomicity",
        suite_options(5, 1, synth::Backend::kEnumerative));
    const synth::SuiteResult parallel = synth::synthesize_suite(
        model, "rmw_atomicity",
        suite_options(5, 0, synth::Backend::kEnumerative));
    EXPECT_EQ(suite_fingerprint(reference), suite_fingerprint(parallel));
    EXPECT_EQ(parallel.scheduler.workers, sched::resolve_jobs(0));
}

TEST(SchedStats, CountersAreFilledAndJobsIndependent)
{
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult one = synth::synthesize_suite(
        model, "invlpg", suite_options(5, 1, synth::Backend::kEnumerative));
    const synth::SuiteResult four = synth::synthesize_suite(
        model, "invlpg", suite_options(5, 4, synth::Backend::kEnumerative));
    EXPECT_EQ(one.scheduler.workers, 1);
    EXPECT_EQ(four.scheduler.workers, 4);
    EXPECT_GT(one.scheduler.jobs_run, 0u);
    EXPECT_EQ(one.scheduler.jobs_run, four.scheduler.jobs_run)
        << "the shard list must not depend on the worker count";
    // Candidate enumeration is shard-local, so the programs counter is a
    // pure function of the options.
    EXPECT_EQ(one.programs_considered, four.programs_considered);
}

}  // namespace
}  // namespace transform
