/// \file
/// Tests for the v2 parallel synthesis runtime: the Chase-Lev lock-free
/// deque, the persistent work-stealing pool (job groups, in-job spawning,
/// reuse across batches), the sharded canonical-key index, and the
/// engine-level determinism contract — a multi-threaded synthesize_suite
/// run yields the exact same canonical suite (keys, order, witnesses) as
/// jobs=1, on both backends, at every shard depth including adaptive
/// re-splitting. This binary also runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "elt/serialize.h"
#include "mtm/model.h"
#include "obs/trace.h"
#include "sched/chase_lev.h"
#include "sched/scheduler.h"
#include "sched/sharded_index.h"
#include "synth/engine.h"
#include "util/stopwatch.h"

namespace transform {
namespace {

TEST(ChaseLevDeque, OwnerPushPopIsLifo)
{
    sched::ChaseLevDeque<int> deque;
    int out = 0;
    EXPECT_FALSE(deque.pop(&out));
    for (int i = 0; i < 10; ++i) {
        deque.push(i);
    }
    EXPECT_EQ(deque.size_estimate(), 10u);
    for (int i = 9; i >= 0; --i) {
        ASSERT_TRUE(deque.pop(&out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(deque.pop(&out));
    EXPECT_EQ(deque.size_estimate(), 0u);
}

TEST(ChaseLevDeque, StealTakesOldestFirst)
{
    sched::ChaseLevDeque<int> deque;
    for (int i = 0; i < 5; ++i) {
        deque.push(i);
    }
    // FIFO from the top end, run on a second thread as in production.
    std::jthread thief([&deque] {
        int out = -1;
        for (int i = 0; i < 5; ++i) {
            ASSERT_TRUE(deque.steal(&out));
            EXPECT_EQ(out, i);
        }
        EXPECT_FALSE(deque.steal(&out));
    });
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity)
{
    sched::ChaseLevDeque<int> deque(4);
    EXPECT_EQ(deque.capacity(), 4u);
    constexpr int kItems = 1000;
    for (int i = 0; i < kItems; ++i) {
        deque.push(i);
    }
    EXPECT_GE(deque.capacity(), static_cast<std::size_t>(kItems));
    int out = 0;
    for (int i = kItems - 1; i >= 0; --i) {
        ASSERT_TRUE(deque.pop(&out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(deque.pop(&out));
}

TEST(ChaseLevDeque, ConcurrentStealsLoseNothingAndDuplicateNothing)
{
    // The owner interleaves pushes and pops while thieves hammer steal();
    // every pushed value must be consumed exactly once, split arbitrarily
    // between the two ends. Growth is exercised via a tiny initial ring.
    sched::ChaseLevDeque<int> deque(2);
    constexpr int kItems = 20000;
    constexpr int kThieves = 4;
    std::vector<std::atomic<int>> seen(kItems);
    std::atomic<int> consumed{0};
    std::atomic<bool> done{false};
    {
        std::vector<std::jthread> thieves;
        for (int t = 0; t < kThieves; ++t) {
            thieves.emplace_back([&] {
                int out = -1;
                while (!done.load(std::memory_order_acquire) ||
                       deque.size_estimate() > 0) {
                    if (deque.steal(&out)) {
                        seen[static_cast<std::size_t>(out)].fetch_add(1);
                        consumed.fetch_add(1);
                    }
                }
            });
        }
        int out = -1;
        for (int i = 0; i < kItems; ++i) {
            deque.push(i);
            if (i % 3 == 0 && deque.pop(&out)) {
                seen[static_cast<std::size_t>(out)].fetch_add(1);
                consumed.fetch_add(1);
            }
        }
        while (deque.pop(&out)) {
            seen[static_cast<std::size_t>(out)].fetch_add(1);
            consumed.fetch_add(1);
        }
        done.store(true, std::memory_order_release);
    }
    EXPECT_EQ(consumed.load(), kItems);
    for (int i = 0; i < kItems; ++i) {
        EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << i;
    }
}

TEST(ResolveJobs, ZeroMeansHardwareConcurrency)
{
    const unsigned hw = std::thread::hardware_concurrency();
    EXPECT_EQ(sched::resolve_jobs(0), hw == 0 ? 1 : static_cast<int>(hw));
    EXPECT_EQ(sched::resolve_jobs(1), 1);
    EXPECT_EQ(sched::resolve_jobs(7), 7);
    EXPECT_EQ(sched::resolve_jobs(-3), sched::resolve_jobs(0));
}

TEST(WorkStealingPool, RunsEveryJobExactlyOnce)
{
    for (const int workers : {1, 2, 4, 8}) {
        sched::WorkStealingPool pool(workers);
        EXPECT_EQ(pool.workers(), workers);
        constexpr int kJobs = 500;
        std::vector<std::atomic<int>> runs(kJobs);
        std::vector<sched::WorkStealingPool::Job> jobs;
        for (int i = 0; i < kJobs; ++i) {
            jobs.push_back([&runs, i, workers](int worker) {
                EXPECT_GE(worker, 0);
                EXPECT_LT(worker, workers);
                runs[static_cast<std::size_t>(i)].fetch_add(1);
            });
        }
        pool.run_batch(std::move(jobs));
        for (int i = 0; i < kJobs; ++i) {
            EXPECT_EQ(runs[static_cast<std::size_t>(i)].load(), 1) << i;
        }
        const sched::SchedulerStats stats = pool.stats();
        EXPECT_EQ(stats.workers, workers);
        EXPECT_EQ(stats.jobs_run, static_cast<std::uint64_t>(kJobs));
        EXPECT_LE(stats.steals, stats.jobs_run);
    }
}

TEST(WorkStealingPool, EmptyBatchIsANoOp)
{
    sched::WorkStealingPool pool(4);
    pool.run_batch({});
    EXPECT_EQ(pool.stats().jobs_run, 0u);
}

TEST(WorkStealingPool, UnevenJobsAllComplete)
{
    // A few heavy jobs seeded onto one deque force stealing to finish the
    // batch; completion (not the steal count, which is timing-dependent) is
    // the contract.
    sched::WorkStealingPool pool(4);
    std::atomic<std::uint64_t> total{0};
    std::vector<sched::WorkStealingPool::Job> jobs;
    for (int i = 0; i < 64; ++i) {
        jobs.push_back([&total, i](int) {
            std::uint64_t spins = (i % 16 == 0) ? 200000 : 100;
            volatile std::uint64_t sink = 0;
            for (std::uint64_t s = 0; s < spins; ++s) {
                sink += s;
            }
            total.fetch_add(1);
        });
    }
    pool.run_batch(std::move(jobs));
    EXPECT_EQ(total.load(), 64u);
}

TEST(WorkStealingPool, PersistsAcrossBatches)
{
    // v1 pools were single-shot; the v2 pool parks its workers between
    // batches and serves any number of them.
    sched::WorkStealingPool pool(2);
    std::atomic<int> total{0};
    for (int batch = 0; batch < 5; ++batch) {
        std::vector<sched::WorkStealingPool::Job> jobs;
        for (int i = 0; i < 20; ++i) {
            jobs.push_back([&total](int) { total.fetch_add(1); });
        }
        pool.run_batch(std::move(jobs));
        EXPECT_EQ(total.load(), 20 * (batch + 1));
    }
    EXPECT_EQ(pool.stats().jobs_run, 100u);
}

TEST(WorkStealingPool, ConcurrentGroupsTrackTheirOwnStats)
{
    sched::WorkStealingPool pool(4);
    const auto small = pool.make_group();
    const auto large = pool.make_group();
    std::atomic<int> small_runs{0};
    std::atomic<int> large_runs{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit(small, [&small_runs](int) { small_runs.fetch_add(1); });
    }
    std::vector<sched::WorkStealingPool::Job> batch;
    for (int i = 0; i < 40; ++i) {
        batch.push_back([&large_runs](int) { large_runs.fetch_add(1); });
    }
    pool.submit(large, std::move(batch));
    pool.wait(small);
    EXPECT_EQ(small_runs.load(), 8);
    pool.wait(large);
    EXPECT_EQ(large_runs.load(), 40);
    EXPECT_EQ(pool.group_stats(small).jobs_run, 8u);
    EXPECT_EQ(pool.group_stats(large).jobs_run, 40u);
    EXPECT_EQ(pool.stats().jobs_run, 48u);
}

TEST(WorkStealingPool, JobsCanSpawnIntoTheirOwnGroup)
{
    // The mechanism behind adaptive shard re-splitting: a job trades
    // itself for children, and wait() only returns once the whole spawn
    // tree has drained.
    sched::WorkStealingPool pool(3);
    const auto group = pool.make_group();
    std::atomic<int> leaves{0};
    std::function<void(int, int)> fan_out = [&](int depth, int) {
        if (depth == 0) {
            leaves.fetch_add(1);
            return;
        }
        for (int c = 0; c < 3; ++c) {
            pool.submit(group, [&fan_out, depth](int worker) {
                fan_out(depth - 1, worker);
            });
        }
    };
    pool.submit(group, [&fan_out](int worker) { fan_out(3, worker); });
    pool.wait(group);
    EXPECT_EQ(leaves.load(), 27);  // 3^3 leaves
    EXPECT_EQ(pool.group_stats(group).jobs_run, 1u + 3u + 9u + 27u);
}

TEST(WorkStealingPool, WaitOnEmptyGroupReturnsImmediately)
{
    sched::WorkStealingPool pool(2);
    const auto group = pool.make_group();
    pool.wait(group);
    EXPECT_EQ(pool.group_stats(group).jobs_run, 0u);
}

TEST(SchedStats, MergeSumsCountersAndMaxesOverlappingFields)
{
    sched::SchedulerStats a;
    a.workers = 2;
    a.jobs_run = 10;
    a.steals = 3;
    a.lazy_resplits = 4;
    a.closed_prefix_splits = 1;
    a.skip_enumerations = 100;
    a.dedup_hits = 7;
    a.queue_wait_seconds = 0.5;
    sched::SchedulerStats b;
    b.workers = 4;
    b.jobs_run = 5;
    b.steals = 2;
    b.lazy_resplits = 6;
    b.closed_prefix_splits = 2;
    b.skip_enumerations = 50;
    b.dedup_hits = 1;
    b.queue_wait_seconds = 0.25;
    a.merge(b);
    EXPECT_EQ(a.workers, 4);  // same-pool maximum, not a sum
    EXPECT_EQ(a.jobs_run, 15u);
    EXPECT_EQ(a.steals, 5u);
    EXPECT_EQ(a.lazy_resplits, 10u);
    EXPECT_EQ(a.closed_prefix_splits, 3u);
    EXPECT_EQ(a.skip_enumerations, 150u);
    EXPECT_EQ(a.dedup_hits, 8u);
    EXPECT_EQ(a.queue_wait_seconds, 0.5);  // waits overlap: maximum
}

TEST(ShardedKeyIndex, RecordKeepsMinimumTicket)
{
    sched::ShardedKeyIndex index(8);
    EXPECT_EQ(index.stripes(), 8);

    auto first = index.record("k", 42);
    EXPECT_TRUE(first.inserted);
    EXPECT_TRUE(first.is_min);
    EXPECT_EQ(first.min_ticket, 42u);

    auto higher = index.record("k", 99);
    EXPECT_FALSE(higher.inserted);
    EXPECT_FALSE(higher.is_min);
    EXPECT_EQ(higher.min_ticket, 42u);

    auto lower = index.record("k", 7);
    EXPECT_FALSE(lower.inserted);
    EXPECT_TRUE(lower.is_min);
    EXPECT_EQ(lower.min_ticket, 7u);

    EXPECT_EQ(index.min_ticket("k"), 7u);
    EXPECT_EQ(index.hits(), 2u);
    EXPECT_EQ(index.size(), 1u);
}

TEST(ShardedKeyIndex, ConcurrentRecordsConvergeToGlobalMinimum)
{
    sched::ShardedKeyIndex index(16);
    constexpr int kKeys = 50;
    constexpr int kThreads = 8;
    {
        std::vector<std::jthread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&index, t] {
                for (int k = 0; k < kKeys; ++k) {
                    index.record("key" + std::to_string(k),
                                 static_cast<std::uint64_t>(100 * k + t));
                }
            });
        }
    }
    EXPECT_EQ(index.size(), static_cast<std::size_t>(kKeys));
    EXPECT_EQ(index.hits(),
              static_cast<std::uint64_t>(kKeys * (kThreads - 1)));
    for (int k = 0; k < kKeys; ++k) {
        EXPECT_EQ(index.min_ticket("key" + std::to_string(k)),
                  static_cast<std::uint64_t>(100 * k));
    }
}

synth::SynthesisOptions
suite_options(int bound, int jobs, synth::Backend backend)
{
    synth::SynthesisOptions opt;
    opt.min_bound = 4;
    opt.bound = bound;
    opt.jobs = jobs;
    opt.backend = backend;
    return opt;
}

/// Serializes a suite to the parts the determinism contract covers: keys,
/// order, witnesses, sizes, violated lists (not counters or timing).
std::string
suite_fingerprint(const synth::SuiteResult& suite)
{
    std::string fp;
    for (const synth::SynthesizedTest& test : suite.tests) {
        fp += test.canonical_key;
        fp += '|';
        fp += std::to_string(test.size);
        for (const std::string& axiom : test.violated) {
            fp += ',';
            fp += axiom;
        }
        fp += '|';
        fp += elt::execution_to_xml(test.witness, "w");
        fp += '\n';
    }
    return fp;
}

TEST(SchedDeterminism, EnumerativeSuiteIdenticalAcrossJobCounts)
{
    const mtm::Model model = mtm::x86t_elt();
    for (const std::string axiom : {"sc_per_loc", "invlpg", "tlb_causality"}) {
        const synth::SuiteResult reference = synth::synthesize_suite(
            model, axiom, suite_options(5, 1, synth::Backend::kEnumerative));
        EXPECT_TRUE(reference.complete);
        EXPECT_FALSE(reference.tests.empty()) << axiom;
        for (const int jobs : {2, 4}) {
            const synth::SuiteResult parallel = synth::synthesize_suite(
                model, axiom,
                suite_options(5, jobs, synth::Backend::kEnumerative));
            EXPECT_EQ(suite_fingerprint(reference),
                      suite_fingerprint(parallel))
                << axiom << " with jobs=" << jobs;
        }
    }
}

TEST(SchedDeterminism, SatBackendSuiteIdenticalAcrossJobCounts)
{
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult reference = synth::synthesize_suite(
        model, "invlpg", suite_options(4, 1, synth::Backend::kSat));
    EXPECT_FALSE(reference.tests.empty());
    const synth::SuiteResult parallel = synth::synthesize_suite(
        model, "invlpg", suite_options(4, 4, synth::Backend::kSat));
    EXPECT_EQ(suite_fingerprint(reference), suite_fingerprint(parallel));
}

TEST(SchedDeterminism, BackendsAgreeUnderParallelism)
{
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult enumerative = synth::synthesize_suite(
        model, "invlpg", suite_options(4, 4, synth::Backend::kEnumerative));
    const synth::SuiteResult sat = synth::synthesize_suite(
        model, "invlpg", suite_options(4, 4, synth::Backend::kSat));
    std::set<std::string> enum_keys;
    std::set<std::string> sat_keys;
    for (const auto& t : enumerative.tests) {
        enum_keys.insert(t.canonical_key);
    }
    for (const auto& t : sat.tests) {
        sat_keys.insert(t.canonical_key);
    }
    EXPECT_EQ(enum_keys, sat_keys);
}

TEST(SchedDeterminism, SuiteIsSortedByCanonicalKey)
{
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult suite = synth::synthesize_suite(
        model, "sc_per_loc",
        suite_options(5, 4, synth::Backend::kEnumerative));
    for (std::size_t i = 1; i < suite.tests.size(); ++i) {
        EXPECT_LT(suite.tests[i - 1].canonical_key,
                  suite.tests[i].canonical_key);
    }
}

TEST(SchedDeterminism, HardwareConcurrencyJobsProducesSameSuite)
{
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult reference = synth::synthesize_suite(
        model, "rmw_atomicity",
        suite_options(5, 1, synth::Backend::kEnumerative));
    const synth::SuiteResult parallel = synth::synthesize_suite(
        model, "rmw_atomicity",
        suite_options(5, 0, synth::Backend::kEnumerative));
    EXPECT_EQ(suite_fingerprint(reference), suite_fingerprint(parallel));
    EXPECT_EQ(parallel.scheduler.workers, sched::resolve_jobs(0));
}

TEST(SchedDeterminism, ObservabilityOnIsByteIdenticalAtEveryShardDepth)
{
    // The observability layer (metrics + trace) must be purely
    // observational: same fingerprint as the uninstrumented jobs=1 run at
    // every shard depth, adaptive included. tests/obs_test.cpp sweeps the
    // jobs axis; this covers the shard-depth axis.
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult reference = synth::synthesize_suite(
        model, "invlpg", suite_options(5, 1, synth::Backend::kEnumerative));
    for (const int depth : {0, 1, 2}) {
        synth::SynthesisOptions options =
            suite_options(5, 4, synth::Backend::kEnumerative);
        options.shard_depth = depth;
        options.collect_metrics = true;
        obs::TraceCollector trace(4);
        options.trace = &trace;
        const synth::SuiteResult observed =
            synth::synthesize_suite(model, "invlpg", options);
        EXPECT_EQ(suite_fingerprint(reference), suite_fingerprint(observed))
            << "shard_depth=" << depth;
    }
}

TEST(SchedStats, CountersAreFilledAndJobsIndependent)
{
    const mtm::Model model = mtm::x86t_elt();
    const synth::SuiteResult one = synth::synthesize_suite(
        model, "invlpg", suite_options(5, 1, synth::Backend::kEnumerative));
    const synth::SuiteResult four = synth::synthesize_suite(
        model, "invlpg", suite_options(5, 4, synth::Backend::kEnumerative));
    EXPECT_EQ(one.scheduler.workers, 1);
    EXPECT_EQ(four.scheduler.workers, 4);
    EXPECT_GT(one.scheduler.jobs_run, 0u);
    EXPECT_EQ(one.scheduler.jobs_run, four.scheduler.jobs_run)
        << "the shard list must not depend on the worker count";
    // Candidate enumeration is shard-local, so the programs counter is a
    // pure function of the options.
    EXPECT_EQ(one.programs_considered, four.programs_considered);
}

TEST(AdaptiveSharding, FixedDepthsAndAdaptiveProduceIdenticalSuites)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions adaptive =
        suite_options(5, 2, synth::Backend::kEnumerative);
    adaptive.shard_depth = 0;
    const std::string reference = suite_fingerprint(
        synth::synthesize_suite(model, "sc_per_loc", adaptive));
    EXPECT_FALSE(reference.empty());
    for (const int depth : {1, 2, 3}) {
        synth::SynthesisOptions fixed = adaptive;
        fixed.shard_depth = depth;
        EXPECT_EQ(reference,
                  suite_fingerprint(
                      synth::synthesize_suite(model, "sc_per_loc", fixed)))
            << "shard_depth=" << depth;
    }
}

TEST(AdaptiveSharding, LazyResplitsFireAndAreJobsIndependent)
{
    // A tiny threshold forces the lazy re-split path even at test bounds.
    // The abandon trigger is a deterministic candidate count, so the
    // re-split tree (and with it jobs_run) must be a pure function of the
    // options — identical at every worker count — and the suite must match
    // the default-threshold run.
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions opt =
        suite_options(5, 1, synth::Backend::kEnumerative);
    opt.shard_depth = 0;
    opt.resplit_threshold = 16;
    const synth::SuiteResult one =
        synth::synthesize_suite(model, "sc_per_loc", opt);
    EXPECT_GT(one.scheduler.lazy_resplits, 0u);
    for (const int jobs : {2, 8}) {
        synth::SynthesisOptions parallel = opt;
        parallel.jobs = jobs;
        const synth::SuiteResult many =
            synth::synthesize_suite(model, "sc_per_loc", parallel);
        EXPECT_EQ(suite_fingerprint(one), suite_fingerprint(many))
            << "jobs=" << jobs;
        EXPECT_EQ(one.scheduler.lazy_resplits, many.scheduler.lazy_resplits);
        EXPECT_EQ(one.scheduler.closed_prefix_splits,
                  many.scheduler.closed_prefix_splits);
        EXPECT_EQ(one.scheduler.jobs_run, many.scheduler.jobs_run);
    }
    synth::SynthesisOptions coarse = opt;
    coarse.resplit_threshold = 4096;
    EXPECT_EQ(suite_fingerprint(one),
              suite_fingerprint(
                  synth::synthesize_suite(model, "sc_per_loc", coarse)));
}

TEST(AdaptiveSharding, SuiteMatrixMatchesEagerProbeFixture)
{
    // The byte-identical-suite contract across the full sweep matrix. The
    // fixture expectation is the jobs=1 / shard-depth=1 run: a single
    // worker searching the fixed depth-1 shards in submission order
    // performs exactly the sequential enumeration the pre-PR eager-probe
    // engine (and the paper's serial loop) performed, so its suite is the
    // pre-PR fixture. Lazy re-splitting (depth 0, with a threshold small
    // enough to actually fire) and every fixed depth must reproduce it at
    // every worker count.
    const mtm::Model model = mtm::x86t_elt();
    for (const std::string axiom : {"sc_per_loc", "invlpg"}) {
        synth::SynthesisOptions fixture =
            suite_options(5, 1, synth::Backend::kEnumerative);
        fixture.shard_depth = 1;
        const synth::SuiteResult reference =
            synth::synthesize_suite(model, axiom, fixture);
        EXPECT_TRUE(reference.complete);
        EXPECT_FALSE(reference.tests.empty()) << axiom;
        for (const int jobs : {1, 2, 4}) {
            for (const int depth : {0, 1, 3}) {
                synth::SynthesisOptions opt = fixture;
                opt.jobs = jobs;
                opt.shard_depth = depth;
                opt.resplit_threshold = depth == 0 ? 32 : 0;
                const synth::SuiteResult swept =
                    synth::synthesize_suite(model, axiom, opt);
                EXPECT_EQ(suite_fingerprint(reference),
                          suite_fingerprint(swept))
                    << axiom << " jobs=" << jobs << " depth=" << depth;
                // Candidates are searched exactly once under lazy
                // splitting (skip-resume never re-visits), so the
                // programs counter matches the sequential fixture.
                EXPECT_EQ(reference.programs_considered,
                          swept.programs_considered)
                    << axiom << " jobs=" << jobs << " depth=" << depth;
            }
        }
    }
}

TEST(AdaptiveSharding, ClosedPrefixSplitsFireOnDeepRecursion)
{
    // With a threshold this small the re-split recursion descends past
    // shards whose prefix closed thread 0 — pre-PR those dead-ended
    // (split_shard returned empty and the whole subtree stayed one job);
    // closed-prefix splitting keeps subdividing on thread 1+ decisions.
    // The suite must stay identical to the unsplit run regardless.
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions opt =
        suite_options(5, 2, synth::Backend::kEnumerative);
    opt.shard_depth = 0;
    opt.resplit_threshold = 4;
    const synth::SuiteResult deep =
        synth::synthesize_suite(model, "sc_per_loc", opt);
    EXPECT_GT(deep.scheduler.lazy_resplits, 0u);
    EXPECT_GT(deep.scheduler.closed_prefix_splits, 0u);
    synth::SynthesisOptions fixed = opt;
    fixed.shard_depth = 1;
    EXPECT_EQ(suite_fingerprint(
                  synth::synthesize_suite(model, "sc_per_loc", fixed)),
              suite_fingerprint(deep));
}

TEST(SchedStats, QueueWaitExcludedFromSuiteSeconds)
{
    // On a one-worker shared pool the axioms' suites run back to back, so
    // under the old accounting (watch from SuiteRun construction) each
    // suite reported nearly the whole sweep's wall time and the per-suite
    // seconds summed to ~axioms x wall. With the watch restarted when the
    // deadline arms, the per-suite seconds partition the wall time
    // instead, and the wait shows up in queue_wait_seconds.
    const mtm::Model model = mtm::x86t_elt();
    const synth::SynthesisOptions opt =
        suite_options(5, 1, synth::Backend::kEnumerative);
    util::Stopwatch watch;
    const auto suites = synth::synthesize_all_parallel(model, opt);
    const double wall = watch.elapsed_seconds();
    ASSERT_GE(suites.size(), 3u);
    double search_total = 0;
    for (const auto& suite : suites) {
        EXPECT_GE(suite.scheduler.queue_wait_seconds, 0.0);
        EXPECT_LE(suite.scheduler.queue_wait_seconds, wall * 1.05);
        EXPECT_LE(suite.seconds, wall * 1.05) << suite.axiom;
        search_total += suite.seconds;
    }
    // The old accounting made this sum ~3x the wall clock (suite i's watch
    // ran from submission, so its seconds spanned suites 0..i); per-suite
    // windows now partition the wall, modulo the one-steal-chunk overlap
    // injection chunking allows between adjacent groups — hence 2x, not a
    // tight bound.
    EXPECT_LE(search_total, wall * 2.0);
    // The last-submitted suite necessarily queued behind the earlier ones
    // on the single worker; its wait must be visible in the new counter
    // (the old accounting folded it into `seconds`).
    EXPECT_GT(suites.back().scheduler.queue_wait_seconds, 0.0);
}

TEST(AdaptiveSharding, SharedPoolSweepMatchesSerialDriver)
{
    // synthesize_all_parallel runs every axiom's shards on ONE pool (one
    // job group per axiom); the result must be indistinguishable from the
    // serial per-axiom driver.
    const mtm::Model model = mtm::x86t_elt();
    const synth::SynthesisOptions opt =
        suite_options(5, 4, synth::Backend::kEnumerative);
    const auto serial = synth::synthesize_all(model, opt);
    const auto shared = synth::synthesize_all_parallel(model, opt);
    ASSERT_EQ(serial.size(), shared.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].axiom, shared[i].axiom);
        EXPECT_EQ(suite_fingerprint(serial[i]), suite_fingerprint(shared[i]))
            << serial[i].axiom;
    }
}

}  // namespace
}  // namespace transform
