/// \file
/// Tests for the `.mtm` specification frontend: lexer/parser happy paths,
/// positioned error diagnostics (the tools' exit-2 contract builds on
/// them), canonical printing, the parse-print-parse fixed point for every
/// zoo model, and the golden equality between the sources embedded in
/// spec/registry.cpp and the checked-in examples/models/*.mtm files.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "spec/ast.h"
#include "spec/parser.h"
#include "spec/printer.h"
#include "spec/registry.h"

namespace transform::spec {
namespace {

ModelSpec
parse_ok(const std::string& source)
{
    Diagnostic diag;
    const auto spec = parse_model(source, &diag);
    EXPECT_TRUE(spec.has_value()) << diag.to_string("<test>");
    return spec.value_or(ModelSpec{});
}

Diagnostic
parse_fail(const std::string& source)
{
    Diagnostic diag;
    const auto spec = parse_model(source, &diag);
    EXPECT_FALSE(spec.has_value())
        << "expected a parse failure, got model " << spec->name;
    return diag;
}

TEST(SpecParse, MinimalModel)
{
    const ModelSpec spec =
        parse_ok("model tiny\nvm off\naxiom only: acyclic(po)\n");
    EXPECT_EQ(spec.name, "tiny");
    EXPECT_FALSE(spec.vm);
    ASSERT_EQ(spec.axioms.size(), 1u);
    EXPECT_EQ(spec.axioms[0].name, "only");
    EXPECT_EQ(spec.axioms[0].form, AxiomForm::kAcyclic);
    ASSERT_NE(spec.axioms[0].expr, nullptr);
    EXPECT_EQ(spec.axioms[0].expr->op, ExprOp::kBase);
    EXPECT_EQ(spec.axioms[0].expr->base, BaseRel::kPo);
}

TEST(SpecParse, VmDefaultsOn)
{
    EXPECT_TRUE(parse_ok("model m\naxiom a: empty(0)\n").vm);
}

TEST(SpecParse, CommentsAndDescriptions)
{
    const ModelSpec spec = parse_ok(
        "// leading comment\n"
        "model m\n"
        "# hash comment\n"
        "axiom a \"words inside\": irreflexive(rf)  // trailing\n");
    ASSERT_EQ(spec.axioms.size(), 1u);
    EXPECT_EQ(spec.axioms[0].description, "words inside");
    EXPECT_EQ(spec.axioms[0].form, AxiomForm::kIrreflexive);
}

TEST(SpecParse, PrecedenceJoinOverIntersectOverUnion)
{
    // a | b & c ; d  parses as  a | (b & (c ; d)).
    const ModelSpec spec =
        parse_ok("model m\naxiom a: empty(rf | co & fr ; po)\n");
    const Expr& root = *spec.axioms[0].expr;
    ASSERT_EQ(root.op, ExprOp::kUnion);
    EXPECT_EQ(root.lhs->op, ExprOp::kBase);
    ASSERT_EQ(root.rhs->op, ExprOp::kIntersect);
    EXPECT_EQ(root.rhs->lhs->op, ExprOp::kBase);
    EXPECT_EQ(root.rhs->rhs->op, ExprOp::kJoin);
}

TEST(SpecParse, PostfixOperatorsAndSets)
{
    const ModelSpec spec = parse_ok(
        "model m\naxiom a: acyclic(([W] ; po ; [R])^+ | rf^-1 | co^*)\n");
    const Expr& root = *spec.axioms[0].expr;
    ASSERT_EQ(root.op, ExprOp::kUnion);
    ASSERT_EQ(root.lhs->op, ExprOp::kUnion);
    EXPECT_EQ(root.lhs->lhs->op, ExprOp::kClosure);
    EXPECT_EQ(root.lhs->rhs->op, ExprOp::kTranspose);
    EXPECT_EQ(root.rhs->op, ExprOp::kReflexiveClosure);
}

TEST(SpecParse, LetBindingsShareBodies)
{
    const ModelSpec spec = parse_ok(
        "model m\nlet com = rf | co | fr\n"
        "axiom a: acyclic(com | po)\naxiom b: empty(com & rmw)\n");
    ASSERT_EQ(spec.lets.size(), 1u);
    const Expr& a = *spec.axioms[0].expr->lhs;
    const Expr& b = *spec.axioms[1].expr->lhs;
    ASSERT_EQ(a.op, ExprOp::kLetRef);
    ASSERT_EQ(b.op, ExprOp::kLetRef);
    // One parse of the body, shared by every reference (DAG, not copies).
    EXPECT_EQ(a.lhs.get(), b.lhs.get());
    EXPECT_EQ(a.lhs.get(), spec.lets[0].expr.get());
}

// ---------------------------------------------------------------------------
// Diagnostics: every malformed input reports a positioned error.
// ---------------------------------------------------------------------------

TEST(SpecParse, UnknownRelationPositioned)
{
    const Diagnostic diag =
        parse_fail("model m\naxiom a: acyclic(rf | bogus)\n");
    EXPECT_EQ(diag.line, 2);
    EXPECT_EQ(diag.col, 23);
    EXPECT_NE(diag.message.find("bogus"), std::string::npos);
    EXPECT_EQ(diag.to_string("file.mtm"),
              "file.mtm:2:23: error: " + diag.message);
}

TEST(SpecParse, ErrorCatalogue)
{
    // Each entry: source, expected line, substring of the message.
    const struct {
        const char* source;
        int line;
        const char* needle;
    } cases[] = {
        {"", 1, "model"},
        {"model\n", 2, "model name"},  // EOF-positioned
        {"model m\n", 2, "no axioms"},
        {"model m\nvm maybe\n", 2, "'on' or 'off'"},
        {"model m\naxiom a acyclic(po)\n", 2, "':'"},
        {"model m\naxiom a: circular(po)\n", 2, "unknown axiom form"},
        {"model m\naxiom a: acyclic(po\n", 3, "')'"},
        {"model m\naxiom a: acyclic(po |)\n", 2, "expected a relation"},
        {"model m\naxiom a: acyclic([Q])\n", 2, "unknown event class"},
        {"model m\naxiom a: acyclic(W)\n", 2, "unknown relation"},
        {"model m\naxiom a: acyclic(po^)\n", 2, "'^+', '^*' or '^-1'"},
        {"model m\naxiom a: acyclic(po) axiom a: empty(0)\n", 2,
         "duplicate axiom"},
        {"model m\nlet x = po\nlet x = rf\n", 3, "duplicate let"},
        {"model m\nlet rf = po\n", 2, "base relation"},
        {"model m\naxiom a \"unclosed: acyclic(po)\n", 2,
         "unterminated string"},
        {"model m\naxiom a: acyclic(po) $\n", 2, "unexpected character"},
    };
    for (const auto& c : cases) {
        const Diagnostic diag = parse_fail(c.source);
        EXPECT_EQ(diag.line, c.line) << c.source;
        EXPECT_NE(diag.message.find(c.needle), std::string::npos)
            << c.source << " -> " << diag.message;
    }
}

// ---------------------------------------------------------------------------
// Printing: canonical output re-parses to the same tree (fixed point).
// ---------------------------------------------------------------------------

TEST(SpecPrint, MinimalParensReparseIdentically)
{
    // The canonical printer drops parentheses precedence already implies
    // and keeps the ones that change the parse.
    const ModelSpec spec = parse_ok(
        "model m\n"
        "axiom a: empty((fr ; co) & rmw)\n"
        "axiom b: acyclic((rf | co)^+)\n"
        "axiom c: empty(po \\ (po & rf))\n");
    EXPECT_EQ(expr_to_source(*spec.axioms[0].expr), "fr ; co & rmw");
    EXPECT_EQ(expr_to_source(*spec.axioms[1].expr), "(rf | co)^+");
    EXPECT_EQ(expr_to_source(*spec.axioms[2].expr), "po \\ (po & rf)");
}

TEST(SpecPrint, ReflexiveClosureRoundTrips)
{
    // `^*` prints back as itself (postfix level) and re-parses to the
    // same tree, parenthesized operand included.
    const ModelSpec spec = parse_ok(
        "model m\n"
        "axiom a: irreflexive(rf ; (co | fr)^*)\n"
        "axiom b: empty(po^* \\ po^+ \\ [M])\n");
    EXPECT_EQ(expr_to_source(*spec.axioms[0].expr), "rf ; (co | fr)^*");
    EXPECT_EQ(expr_to_source(*spec.axioms[1].expr), "po^* \\ po^+ \\ [M]");
    const std::string printed = model_to_source(spec);
    const ModelSpec reparsed = parse_ok(printed);
    EXPECT_EQ(model_to_source(reparsed), printed);
    EXPECT_EQ(reparsed.axioms[0].expr->rhs->op, ExprOp::kReflexiveClosure);
}

TEST(SpecPrint, RoundTripFixedPointForEveryZooModel)
{
    for (const RegistryEntry& entry : registry_entries()) {
        const ModelSpec first = parse_ok(entry.source);
        const std::string printed = model_to_source(first);
        const ModelSpec second = parse_ok(printed);
        const std::string reprinted = model_to_source(second);
        EXPECT_EQ(printed, reprinted) << entry.name;
        EXPECT_EQ(first.axioms.size(), second.axioms.size()) << entry.name;
        EXPECT_EQ(first.vm, second.vm) << entry.name;
    }
}

// ---------------------------------------------------------------------------
// Golden: the embedded registry sources ARE the checked-in zoo files.
// ---------------------------------------------------------------------------

TEST(SpecRegistry, EmbeddedSourcesMatchZooFiles)
{
    const std::filesystem::path zoo =
        std::filesystem::path(TRANSFORM_SOURCE_ROOT) / "examples" / "models";
    ASSERT_TRUE(std::filesystem::exists(zoo))
        << "zoo directory missing: " << zoo;
    for (const RegistryEntry& entry : registry_entries()) {
        const std::filesystem::path file = zoo / entry.name;
        ASSERT_TRUE(std::filesystem::exists(file)) << file;
        std::ifstream in(file);
        std::stringstream buffer;
        buffer << in.rdbuf();
        EXPECT_EQ(buffer.str(), entry.source)
            << entry.name << " drifted from the embedded registry source";
    }
    // And the zoo holds nothing unregistered.
    for (const auto& dirent : std::filesystem::directory_iterator(zoo)) {
        const std::string name = dirent.path().filename().string();
        bool registered = false;
        for (const RegistryEntry& entry : registry_entries()) {
            registered = registered || name == entry.name;
        }
        EXPECT_TRUE(registered) << name << " is not in spec/registry.cpp";
    }
}

TEST(SpecRegistry, ResolveTiers)
{
    std::string error;
    // Builtins stay hardwired C++.
    const auto builtin = resolve_model("x86t_elt", &error);
    ASSERT_TRUE(builtin.has_value()) << error;
    EXPECT_FALSE(builtin->from_spec);
    EXPECT_EQ(builtin->model.axioms()[0].tag, mtm::AxiomTag::kScPerLoc);
    // Registry names resolve with or without the suffix.
    for (const char* name : {"sc", "sc.mtm"}) {
        const auto zoo = resolve_model(name, &error);
        ASSERT_TRUE(zoo.has_value()) << error;
        EXPECT_TRUE(zoo->from_spec);
        EXPECT_EQ(zoo->model.name(), "sc");
        EXPECT_EQ(zoo->model.axioms()[0].tag, mtm::AxiomTag::kExpr);
    }
    // Unknown names fail with the catalogue in the message.
    EXPECT_FALSE(resolve_model("nope", &error).has_value());
    EXPECT_NE(error.find("unknown model"), std::string::npos);
    EXPECT_NE(error.find("x86t_elt"), std::string::npos);
}

}  // namespace
}  // namespace transform::spec
