/// \file
/// Round-trip tests for the XML serializer on every fixture.
#include <gtest/gtest.h>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "elt/serialize.h"

namespace transform::elt {
namespace {

void
expect_round_trip(const Execution& original)
{
    const std::string xml = execution_to_xml(original, "test");
    const auto parsed = execution_from_xml(xml);
    ASSERT_TRUE(parsed.has_value()) << xml;
    EXPECT_EQ(parsed->program.num_events(), original.program.num_events());
    EXPECT_EQ(parsed->program.num_threads(), original.program.num_threads());
    for (EventId id = 0; id < original.program.num_events(); ++id) {
        const Event& a = original.program.event(id);
        const Event& b = parsed->program.event(id);
        EXPECT_EQ(a.kind, b.kind) << "event " << id;
        EXPECT_EQ(a.thread, b.thread) << "event " << id;
        EXPECT_EQ(a.va, b.va) << "event " << id;
        EXPECT_EQ(a.map_pa, b.map_pa) << "event " << id;
        EXPECT_EQ(a.parent, b.parent) << "event " << id;
        EXPECT_EQ(a.remap_src, b.remap_src) << "event " << id;
    }
    EXPECT_EQ(parsed->rf_src, original.rf_src);
    EXPECT_EQ(parsed->co_pos, original.co_pos);
    EXPECT_EQ(parsed->ptw_src, original.ptw_src);
    EXPECT_EQ(parsed->co_pa_pos, original.co_pa_pos);
    EXPECT_EQ(parsed->program.rmw_pairs(), original.program.rmw_pairs());
}

TEST(Serialize, RoundTripAllFixtures)
{
    expect_round_trip(fixtures::fig2a_sb_mcm());
    expect_round_trip(fixtures::sb_both_reads_zero_mcm());
    expect_round_trip(fixtures::fig2b_sb_elt());
    expect_round_trip(fixtures::fig2c_sb_elt_aliased());
    expect_round_trip(fixtures::fig4_remap_chain());
    expect_round_trip(fixtures::fig5a_shared_walk());
    expect_round_trip(fixtures::fig5b_invlpg_forces_walk());
    expect_round_trip(fixtures::fig6_remap_disambiguation());
    expect_round_trip(fixtures::fig8_non_minimal_mcm());
    expect_round_trip(fixtures::fig10a_ptwalk2());
    expect_round_trip(fixtures::fig10b_dirtybit3());
    expect_round_trip(fixtures::fig11_new_elt());
}

TEST(Serialize, RoundTripPreservesSemantics)
{
    const Execution original = fixtures::fig10a_ptwalk2();
    const auto parsed =
        execution_from_xml(execution_to_xml(original, "ptwalk2"));
    ASSERT_TRUE(parsed.has_value());
    const DerivedRelations a = derive(original);
    const DerivedRelations b = derive(*parsed);
    ASSERT_TRUE(a.well_formed);
    ASSERT_TRUE(b.well_formed);
    EXPECT_EQ(a.fr_va, b.fr_va);
    EXPECT_EQ(a.remap, b.remap);
    EXPECT_EQ(a.rf, b.rf);
}

TEST(Serialize, RmwRoundTrip)
{
    ProgramBuilder builder;
    builder.thread();
    const EventId r = builder.R(0);
    builder.rptw(r);
    const EventId w = builder.W(0);
    builder.wdb(w);
    builder.rmw(r, w);
    Execution e = Execution::empty_for(builder.build());
    expect_round_trip(e);
}

TEST(Serialize, RejectsGarbage)
{
    EXPECT_FALSE(execution_from_xml("not xml").has_value());
    EXPECT_FALSE(execution_from_xml("<wrong/>").has_value());
    EXPECT_FALSE(execution_from_xml("<elt threads=\"1\">").has_value());
}

TEST(Serialize, ProgramXmlMentionsKinds)
{
    const std::string xml =
        program_to_xml(fixtures::fig10a_ptwalk2().program, "ptwalk2");
    EXPECT_NE(xml.find("<wpte"), std::string::npos);
    EXPECT_NE(xml.find("<invlpg"), std::string::npos);
    EXPECT_NE(xml.find("<read"), std::string::npos);
    EXPECT_NE(xml.find("<rptw"), std::string::npos);
    EXPECT_NE(xml.find("name=\"ptwalk2\""), std::string::npos);
}

}  // namespace
}  // namespace transform::elt
