/// \file
/// Tests for the litmus text format: round-trips on fixtures and
/// synthesized suites, grammar features, and diagnostics on bad input.
#include <gtest/gtest.h>

#include "elt/fixtures.h"
#include "elt/litmus.h"
#include "mtm/model.h"
#include "synth/canonical.h"
#include "synth/engine.h"

namespace transform::elt {
namespace {

void
expect_round_trip(const Program& program)
{
    const std::string text = program_to_litmus(program, "t");
    std::string error;
    const auto parsed = parse_litmus(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error << "\n" << text;
    // Same canonical program (ids may be renumbered; ghosts reattached).
    EXPECT_EQ(synth::canonical_key(parsed->program),
              synth::canonical_key(program))
        << text;
}

TEST(Litmus, RoundTripFixtures)
{
    expect_round_trip(fixtures::fig2b_sb_elt().program);
    expect_round_trip(fixtures::fig2c_sb_elt_aliased().program);
    expect_round_trip(fixtures::fig4_remap_chain().program);
    expect_round_trip(fixtures::fig5a_shared_walk().program);
    expect_round_trip(fixtures::fig5b_invlpg_forces_walk().program);
    expect_round_trip(fixtures::fig6_remap_disambiguation().program);
    expect_round_trip(fixtures::fig10a_ptwalk2().program);
    expect_round_trip(fixtures::fig10b_dirtybit3().program);
    expect_round_trip(fixtures::fig11_new_elt().program);
}

TEST(Litmus, RoundTripSynthesizedSuite)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions opt;
    opt.min_bound = 4;
    opt.bound = 5;
    const auto suite = synth::synthesize_suite(model, "sc_per_loc", opt);
    ASSERT_FALSE(suite.tests.empty());
    for (const auto& test : suite.tests) {
        expect_round_trip(test.witness.program);
    }
}

TEST(Litmus, ParsesPtwalk2Source)
{
    const std::string text =
        "# the smallest ELT TransForm synthesizes\n"
        "elt ptwalk2\n"
        "thread P0\n"
        "  WPTE x -> b as p0\n"
        "  INVLPG x for p0\n"
        "  R x miss\n";
    std::string error;
    const auto parsed = parse_litmus(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->name, "ptwalk2");
    EXPECT_EQ(parsed->program.num_events(), 4);  // + the implied walk
    EXPECT_EQ(synth::canonical_key(parsed->program),
              synth::canonical_key(fixtures::fig10a_ptwalk2().program));
}

TEST(Litmus, DefaultIsMiss)
{
    const auto parsed = parse_litmus("elt t\nthread P0\n  R x\n");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->program.num_events(), 2);  // read + walk
}

TEST(Litmus, HitHasNoWalk)
{
    const auto parsed =
        parse_litmus("elt t\nthread P0\n  R x miss\n  R x hit\n");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->program.num_events(), 3);
    EXPECT_TRUE(parsed->program.validate().empty());
}

TEST(Litmus, RmwPairing)
{
    const auto parsed =
        parse_litmus("elt t\nthread P0\n  R x miss rmw\n  W x hit\n");
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->program.rmw_pairs().size(), 1u);
    EXPECT_TRUE(parsed->program.validate().empty());
}

TEST(Litmus, RdbAblationGhost)
{
    const auto parsed = parse_litmus("elt t\nthread P0\n  W x miss rdb\n");
    ASSERT_TRUE(parsed.has_value());
    // W + Rdb + Wdb + Rptw.
    EXPECT_EQ(parsed->program.num_events(), 4);
}

TEST(Litmus, ExtendedAddressNames)
{
    // x1 is VA index 4 (second round of the alphabet).
    const auto parsed = parse_litmus("elt t\nthread P0\n  R x1 miss\n");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->program.event(0).va, 4);
}

TEST(Litmus, Diagnostics)
{
    std::string error;
    EXPECT_FALSE(parse_litmus("", &error).has_value());
    EXPECT_NE(error.find("elt"), std::string::npos);

    EXPECT_FALSE(parse_litmus("elt t\n  R x\n", &error).has_value());
    EXPECT_NE(error.find("thread"), std::string::npos);

    EXPECT_FALSE(
        parse_litmus("elt t\nthread P0\n  R q\n", &error).has_value());
    EXPECT_NE(error.find("bad VA"), std::string::npos);

    EXPECT_FALSE(
        parse_litmus("elt t\nthread P0\n  BLURB x\n", &error).has_value());
    EXPECT_NE(error.find("unknown instruction"), std::string::npos);

    EXPECT_FALSE(parse_litmus("elt t\nthread P0\n  INVLPG x for nope\n",
                              &error)
                     .has_value());
    EXPECT_NE(error.find("unknown WPTE name"), std::string::npos);

    EXPECT_FALSE(parse_litmus("elt t\nthread P0\n  R x rmw\n  R x hit\n",
                              &error)
                     .has_value());
    EXPECT_NE(error.find("rmw"), std::string::npos);

    EXPECT_FALSE(parse_litmus("elt t\nthread P0\n  R x rmw\n", &error)
                     .has_value());
    EXPECT_NE(error.find("dangling"), std::string::npos);
}

TEST(Litmus, CommentsAndBlankLinesIgnored)
{
    const std::string text =
        "\n# header comment\nelt t\n\nthread P0   # core 0\n"
        "  R x miss  # load\n\n";
    const auto parsed = parse_litmus(text);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->program.num_events(), 2);
}

TEST(Litmus, WriterEmitsRemapNames)
{
    const std::string text =
        program_to_litmus(fixtures::fig11_new_elt().program, "fig11");
    EXPECT_NE(text.find("as p0"), std::string::npos);
    EXPECT_NE(text.find("for p0"), std::string::npos);
    // Two threads.
    EXPECT_NE(text.find("thread P0"), std::string::npos);
    EXPECT_NE(text.find("thread P1"), std::string::npos);
}

}  // namespace
}  // namespace transform::elt
