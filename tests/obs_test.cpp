/// \file
/// Tests for the observability layer (src/obs/): the phase-attributed
/// MetricsRegistry (exact merges under concurrent hammering, out-of-range
/// drops), the TraceCollector (valid Chrome trace JSON, paired flow
/// arrows, bounded rings), the metrics-JSON report, the scheduler's job
/// spans — and the layer's central promise: turning observability on
/// changes NOTHING about the synthesized suites (byte-identical
/// fingerprints across backends and job counts, obs on vs off).
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "elt/serialize.h"
#include "mtm/model.h"
#include "obs/alloc.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "synth/engine.h"

namespace transform {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON well-formedness checker, so the trace/report tests can
// assert "any JSON consumer parses this" without a JSON dependency.

struct JsonCursor {
    const std::string& text;
    std::size_t pos = 0;

    void
    skip_ws()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skip_ws();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    parse_string()
    {
        skip_ws();
        if (pos >= text.size() || text[pos] != '"') {
            return false;
        }
        ++pos;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\') {
                ++pos;  // escape: skip the escaped character blindly
            }
            ++pos;
        }
        return consume('"');
    }

    bool
    parse_value()
    {
        skip_ws();
        if (pos >= text.size()) {
            return false;
        }
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            if (consume('}')) {
                return true;
            }
            do {
                if (!parse_string() || !consume(':') || !parse_value()) {
                    return false;
                }
            } while (consume(','));
            return consume('}');
        }
        if (c == '[') {
            ++pos;
            if (consume(']')) {
                return true;
            }
            do {
                if (!parse_value()) {
                    return false;
                }
            } while (consume(','));
            return consume(']');
        }
        if (c == '"') {
            return parse_string();
        }
        if (c == 't') {
            return text.compare(pos, 4, "true") == 0 && (pos += 4, true);
        }
        if (c == 'f') {
            return text.compare(pos, 5, "false") == 0 && (pos += 5, true);
        }
        if (c == 'n') {
            return text.compare(pos, 4, "null") == 0 && (pos += 4, true);
        }
        // Number: accept any [-+0-9.eE] run (validity of the digits is the
        // producer's problem; structure is what we check here).
        std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
        }
        return pos > start;
    }
};

bool
is_valid_json(const std::string& text)
{
    JsonCursor cursor{text};
    if (!cursor.parse_value()) {
        return false;
    }
    cursor.skip_ws();
    return cursor.pos == text.size();
}

int
count_occurrences(const std::string& text, const std::string& needle)
{
    int n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size())) {
        ++n;
    }
    return n;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, ConcurrentHammeringMergesExactly)
{
    constexpr int kThreads = 8;
    constexpr int kIterations = 50000;
    obs::MetricsRegistry registry(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        // Two threads share each cell on purpose: adds must not lose
        // updates even when the per-worker ownership convention is broken.
        threads.emplace_back([&registry, t] {
            const int worker = t % 4;
            const obs::Phase phase =
                static_cast<obs::Phase>(t % obs::kPhaseCount);
            for (int i = 0; i < kIterations; ++i) {
                registry.add(worker, phase, 3);
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    const obs::PhaseTotals totals = registry.merged();
    std::uint64_t count = 0;
    std::uint64_t nanos = 0;
    for (int p = 0; p < obs::kPhaseCount; ++p) {
        count += totals.count(static_cast<obs::Phase>(p));
        nanos += totals.phases[static_cast<std::size_t>(p)].nanos;
    }
    EXPECT_EQ(count, static_cast<std::uint64_t>(kThreads) * kIterations);
    EXPECT_EQ(nanos, static_cast<std::uint64_t>(kThreads) * kIterations * 3);
    EXPECT_EQ(totals.total_nanos(), nanos);
    EXPECT_EQ(registry.dropped(), 0u);
}

TEST(MetricsRegistry, OutOfRangeWorkersAreDroppedNotCrashed)
{
    obs::MetricsRegistry registry(2);
    registry.add(-1, obs::Phase::kDerive, 10);
    registry.add(2, obs::Phase::kDerive, 10);
    registry.add(1, obs::Phase::kDerive, 10);
    EXPECT_EQ(registry.dropped(), 2u);
    EXPECT_EQ(registry.merged().count(obs::Phase::kDerive), 1u);
}

TEST(MetricsRegistry, WorkerNanosSnapshotsSupportUnclaimedAttribution)
{
    obs::MetricsRegistry registry(1);
    registry.add(0, obs::Phase::kDerive, 100);
    registry.add(0, obs::Phase::kJudge, 50);
    EXPECT_EQ(registry.worker_nanos(0), 150u);
    EXPECT_EQ(registry.worker_phase_nanos(0, obs::Phase::kDerive), 100u);
    EXPECT_EQ(registry.worker_phase_nanos(0, obs::Phase::kJudge), 50u);
    EXPECT_EQ(registry.worker_phase_nanos(0, obs::Phase::kDedup), 0u);
}

TEST(MetricsRegistry, ScopedPhaseNullRegistryIsANoop)
{
    // The disabled fast path must not crash (and must not read the clock,
    // though that is asserted by the benchmarks, not here).
    obs::ScopedPhase phase(nullptr, 0, obs::Phase::kSatSolve);
}

TEST(MetricsRegistry, ScopedPhaseAttributesOneSection)
{
    obs::MetricsRegistry registry(1);
    {
        obs::ScopedPhase phase(&registry, 0, obs::Phase::kCanonicalize);
    }
    EXPECT_EQ(registry.merged().count(obs::Phase::kCanonicalize), 1u);
}

TEST(MetricsRegistry, PhaseNamesAreStable)
{
    // The metrics-JSON schema spells phases with these names; renames are
    // schema changes and must bump kMetricsSchemaVersion.
    EXPECT_STREQ(obs::phase_name(obs::Phase::kSkeletonEnum),
                 "skeleton_enum");
    EXPECT_STREQ(obs::phase_name(obs::Phase::kSatEncode), "sat_encode");
    EXPECT_STREQ(obs::phase_name(obs::Phase::kSatSolve), "sat_solve");
    EXPECT_STREQ(obs::phase_name(obs::Phase::kDerive), "derive");
    EXPECT_STREQ(obs::phase_name(obs::Phase::kCanonicalize), "canonicalize");
    EXPECT_STREQ(obs::phase_name(obs::Phase::kJudge), "judge");
    EXPECT_STREQ(obs::phase_name(obs::Phase::kRelax), "relax");
    EXPECT_STREQ(obs::phase_name(obs::Phase::kDedup), "dedup");
    EXPECT_STREQ(obs::phase_name(obs::Phase::kQueueWait), "queue_wait");
}

// ---------------------------------------------------------------------------
// TraceCollector

TEST(TraceCollector, ChromeJsonIsValidAndCarriesEveryKind)
{
    obs::TraceCollector trace(2);
    const std::uint64_t t0 = obs::now_nanos();
    trace.record_complete(0, "span \"quoted\"", t0, t0 + 1000,
                          {{"visited", 7}});
    trace.record_instant(1, "marker", t0 + 500);
    const std::uint64_t flow = trace.next_flow_id();
    trace.record_flow_start(0, flow, t0 + 600);
    trace.record_flow_end(1, flow, t0 + 700);
    trace.record_async_begin(trace.main_lane(), "suite x", 42, t0);
    trace.record_async_end(trace.main_lane(), "suite x", 42, t0 + 2000);

    const std::string json = trace.chrome_json();
    EXPECT_TRUE(is_valid_json(json)) << json;
    // One metadata record per lane (2 workers + main).
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 3);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 1);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"i\""), 1);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), 1);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), 1);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"b\""), 1);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"e\""), 1);
    EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"visited\":7"), std::string::npos);
    EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceCollector, RingsAreBoundedAndCountDrops)
{
    obs::TraceCollector trace(1, 4);
    const std::uint64_t t0 = obs::now_nanos();
    for (int i = 0; i < 10; ++i) {
        trace.record_instant(0, "e" + std::to_string(i), t0 + i);
    }
    trace.record_instant(99, "invalid lane", t0);
    EXPECT_EQ(trace.events_resident(), 4u);
    EXPECT_EQ(trace.dropped(), 7u);  // 6 overwritten + 1 invalid lane
    // The survivors are the newest four.
    const std::string json = trace.chrome_json();
    EXPECT_TRUE(is_valid_json(json));
    EXPECT_EQ(json.find("\"e0\""), std::string::npos);
    EXPECT_NE(json.find("\"e9\""), std::string::npos);
}

TEST(TraceCollector, ConcurrentLanesRecordIndependently)
{
    constexpr int kLanes = 4;
    constexpr int kEvents = 2000;
    obs::TraceCollector trace(kLanes, 4096);
    std::vector<std::thread> threads;
    for (int lane = 0; lane < kLanes; ++lane) {
        threads.emplace_back([&trace, lane] {
            for (int i = 0; i < kEvents; ++i) {
                const std::uint64_t now = obs::now_nanos();
                trace.record_complete(lane, "w", now, now + 10);
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(trace.events_resident(),
              static_cast<std::size_t>(kLanes) * kEvents);
    EXPECT_EQ(trace.dropped(), 0u);
    EXPECT_TRUE(is_valid_json(trace.chrome_json()));
}

TEST(SchedulerTrace, PoolRecordsJobSpansWhenAttached)
{
    sched::WorkStealingPool pool(2);
    obs::TraceCollector trace(pool.workers());
    pool.set_trace(&trace);
    std::atomic<int> ran{0};
    std::vector<sched::WorkStealingPool::Job> jobs;
    for (int i = 0; i < 16; ++i) {
        jobs.push_back([&ran](int) { ++ran; });
    }
    pool.run_batch(std::move(jobs));
    pool.set_trace(nullptr);
    EXPECT_EQ(ran.load(), 16);
    const std::string json = trace.chrome_json();
    EXPECT_TRUE(is_valid_json(json));
    EXPECT_EQ(count_occurrences(json, "\"name\":\"job\""), 16);
    // Detached: further jobs record nothing.
    pool.run_batch({[](int) {}});
    EXPECT_EQ(count_occurrences(trace.chrome_json(), "\"name\":\"job\""),
              16);
}

// ---------------------------------------------------------------------------
// Engine integration: metrics/trace fill SuiteResult without perturbing it.

std::string
suite_fingerprint(const synth::SuiteResult& suite)
{
    std::string fp;
    for (const synth::SynthesizedTest& test : suite.tests) {
        fp += test.canonical_key;
        fp += '|';
        fp += std::to_string(test.size);
        for (const std::string& axiom : test.violated) {
            fp += ',';
            fp += axiom;
        }
        fp += '|';
        fp += elt::execution_to_xml(test.witness, "w");
        fp += '\n';
    }
    return fp;
}

synth::SynthesisOptions
obs_options(int jobs, synth::Backend backend)
{
    synth::SynthesisOptions opt;
    opt.min_bound = 4;
    opt.bound = backend == synth::Backend::kSat ? 4 : 5;
    opt.jobs = jobs;
    opt.backend = backend;
    return opt;
}

TEST(ObsDeterminism, SuitesAreByteIdenticalWithObservabilityOnOrOff)
{
    const mtm::Model model = mtm::x86t_elt();
    for (const synth::Backend backend :
         {synth::Backend::kEnumerative, synth::Backend::kSat}) {
        const synth::SuiteResult reference = synth::synthesize_suite(
            model, "invlpg", obs_options(1, backend));
        EXPECT_FALSE(reference.tests.empty());
        for (const int jobs : {1, 2, 4}) {
            synth::SynthesisOptions instrumented =
                obs_options(jobs, backend);
            instrumented.collect_metrics = true;
            obs::TraceCollector trace(sched::resolve_jobs(jobs));
            instrumented.trace = &trace;
            const synth::SuiteResult observed = synth::synthesize_suite(
                model, "invlpg", instrumented);
            EXPECT_EQ(suite_fingerprint(reference),
                      suite_fingerprint(observed))
                << "backend=" << static_cast<int>(backend)
                << " jobs=" << jobs;
            EXPECT_TRUE(is_valid_json(trace.chrome_json()));
        }
    }
}

TEST(ObsDeterminism, SuitesAreByteIdenticalAcrossInstrumentationMatrix)
{
    // The PR-10 extension of the on/off contract: alloc tracking and the
    // observed-cost re-split feedback are purely observational too. The
    // reference is a bare 1-job run; every (jobs, shard-depth, backend)
    // cell runs with metrics + alloc tracking + feedback armed (feedback
    // is live only at depth 0 with an auto threshold — exactly the cell
    // where timing-driven thresholds could, if buggy, perturb the merge).
    const mtm::Model model = mtm::x86t_elt();
    for (const synth::Backend backend :
         {synth::Backend::kEnumerative, synth::Backend::kSat}) {
        const synth::SuiteResult reference = synth::synthesize_suite(
            model, "invlpg", obs_options(1, backend));
        EXPECT_FALSE(reference.tests.empty());
        for (const int jobs : {1, 2, 4}) {
            for (const int depth : {0, 1, 2}) {
                synth::SynthesisOptions instrumented =
                    obs_options(jobs, backend);
                instrumented.shard_depth = depth;
                instrumented.collect_metrics = true;
                instrumented.track_allocs = true;
                instrumented.observed_cost_feedback = true;
                const synth::SuiteResult observed =
                    synth::synthesize_suite(model, "invlpg",
                                            instrumented);
                EXPECT_EQ(suite_fingerprint(reference),
                          suite_fingerprint(observed))
                    << "backend=" << static_cast<int>(backend)
                    << " jobs=" << jobs << " depth=" << depth;
                EXPECT_GT(observed.allocs.total_count(), 0u);
            }
        }
        // Feedback off is the other half of the on/off matrix.
        synth::SynthesisOptions no_feedback = obs_options(2, backend);
        no_feedback.observed_cost_feedback = false;
        no_feedback.track_allocs = true;
        const synth::SuiteResult cold = synth::synthesize_suite(
            model, "invlpg", no_feedback);
        EXPECT_EQ(suite_fingerprint(reference), suite_fingerprint(cold));
        EXPECT_EQ(cold.scheduler.observed_cost_resplits, 0u);
    }
}

TEST(ObsEngine, CollectMetricsFillsPhaseTotals)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions options =
        obs_options(2, synth::Backend::kEnumerative);
    options.collect_metrics = true;
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, "sc_per_loc", options);
    EXPECT_GT(suite.phases.total_nanos(), 0u);
    EXPECT_GT(suite.phases.count(obs::Phase::kSkeletonEnum), 0u);
    EXPECT_GT(suite.phases.count(obs::Phase::kDerive), 0u);
    EXPECT_GT(suite.phases.count(obs::Phase::kCanonicalize), 0u);
    EXPECT_GT(suite.phases.count(obs::Phase::kDedup), 0u);
    // Enumerative backend: no SAT phases, no solver calls.
    EXPECT_EQ(suite.phases.count(obs::Phase::kSatSolve), 0u);
    EXPECT_EQ(suite.solver.solve_calls, 0u);

    // Metrics off: the breakdown stays all-zero.
    options.collect_metrics = false;
    const synth::SuiteResult off =
        synth::synthesize_suite(model, "sc_per_loc", options);
    EXPECT_EQ(off.phases.total_nanos(), 0u);
}

TEST(ObsEngine, SatBackendAggregatesSolverStatsPerSuite)
{
    const mtm::Model model = mtm::x86t_elt();
    // Solver counters surface even WITHOUT collect_metrics (satellite
    // contract: `--stats` works with no obs flags) — only solve_nanos
    // needs the metrics switch, which gates the solver's clock reads.
    synth::SynthesisOptions options = obs_options(2, synth::Backend::kSat);
    const synth::SuiteResult plain =
        synth::synthesize_suite(model, "invlpg", options);
    EXPECT_GT(plain.solver.solve_calls, 0u);
    EXPECT_GT(plain.solver.propagations, 0u);
    EXPECT_EQ(plain.solver.solve_nanos, 0u);

    options.collect_metrics = true;
    const synth::SuiteResult timed =
        synth::synthesize_suite(model, "invlpg", options);
    EXPECT_EQ(timed.solver.solve_calls, plain.solver.solve_calls)
        << "solver work must not depend on the metrics switch";
    EXPECT_GT(timed.solver.solve_nanos, 0u);
    EXPECT_GT(timed.phases.count(obs::Phase::kSatSolve), 0u);
    EXPECT_GT(timed.phases.count(obs::Phase::kSatEncode), 0u);
}

TEST(ObsEngine, ResplitLineageShowsUpAsPairedFlowArrows)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions options =
        obs_options(4, synth::Backend::kEnumerative);
    options.resplit_threshold = 50;  // force lazy re-splitting
    obs::TraceCollector trace(sched::resolve_jobs(options.jobs));
    options.trace = &trace;
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, "sc_per_loc", options);
    EXPECT_GT(suite.scheduler.lazy_resplits, 0u);
    const std::string json = trace.chrome_json();
    EXPECT_TRUE(is_valid_json(json));
    const int starts = count_occurrences(json, "\"ph\":\"s\"");
    const int ends = count_occurrences(json, "\"ph\":\"f\"");
    EXPECT_GT(starts, 0);
    EXPECT_EQ(starts, ends) << "every re-split arrow must have both ends";
}

// ---------------------------------------------------------------------------
// Metrics-JSON report

TEST(ObsReport, ReportJsonIsValidVersionedAndTotalled)
{
    const mtm::Model model = mtm::x86t_elt();
    obs::RunReport report;
    report.tool = "obs_test";
    report.model = "path/with \"quotes\" and\nnewlines";
    report.backend = "enum";
    report.bound = 5;
    report.jobs = 2;
    for (const std::string axiom : {"sc_per_loc", "invlpg"}) {
        synth::SynthesisOptions options =
            obs_options(2, synth::Backend::kEnumerative);
        options.collect_metrics = true;
        report.suites.push_back(obs::suite_report(
            synth::synthesize_suite(model, axiom, options)));
    }
    const std::string json = obs::report_to_json(report);
    EXPECT_TRUE(is_valid_json(json)) << json;
    EXPECT_NE(json.find("\"schema\": \"transform-metrics\""),
              std::string::npos);
    EXPECT_NE(
        json.find("\"schema_version\": " +
                  std::to_string(obs::kMetricsSchemaVersion)),
        std::string::npos);
    for (int p = 0; p < obs::kPhaseCount; ++p) {
        EXPECT_NE(json.find(obs::phase_name(static_cast<obs::Phase>(p))),
                  std::string::npos);
    }

    const obs::SuiteReport totals = report.totals();
    EXPECT_EQ(totals.tests,
              report.suites[0].tests + report.suites[1].tests);
    EXPECT_EQ(totals.programs_considered,
              report.suites[0].programs_considered +
                  report.suites[1].programs_considered);
}

// ---------------------------------------------------------------------------
// Incremental-session counters: one live solver spanning many candidates
// must surface its assumption/retirement/retention economy through the
// same SuiteResult.solver accumulator (and metrics-JSON) as the fresh
// path — with the suite itself byte-identical either way.

TEST(ObsEngine, IncrementalSatSurfacesSessionCounters)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions options = obs_options(1, synth::Backend::kSat);
    // Bound 5: at bound 4 every model-bearing invlpg candidate accepts at
    // its first model, so no blocking clause (hence no guard) is ever
    // spent; one bound up the enumeration visits non-qualifying models
    // and the retirement path actually runs.
    options.bound = 5;
    options.sat_incremental = false;
    const synth::SuiteResult fresh =
        synth::synthesize_suite(model, "invlpg", options);
    // The fresh-per-candidate path never retires an activation literal.
    EXPECT_EQ(fresh.solver.retired_activations, 0u);
    EXPECT_EQ(fresh.solver.retained_clauses, 0u);

    options.sat_incremental = true;
    const synth::SuiteResult live =
        synth::synthesize_suite(model, "invlpg", options);
    // Per-candidate work is pure assumptions; candidate advances retire
    // the spent guards; learned clauses survive those advances.
    EXPECT_GT(live.solver.assumed_literals, 0u);
    EXPECT_GT(live.solver.retired_activations, 0u);
    EXPECT_GT(live.solver.retained_clauses, 0u);
    // Structure bases are session-built; the fresh path never builds one.
    EXPECT_GT(live.solver.bases_built, 0u);
    EXPECT_EQ(fresh.solver.bases_built, 0u);
    // Base-cache hits need a structure-key revisit, which the invlpg
    // workload's require_wpte pruning squeezes out at this bound (every
    // rmw-markable pair is pinned to one VA assignment). sc_per_loc at
    // bound 5 keeps free-VA (R, W) pairs, so its rmw-marking stage
    // alternates the key under a fixed placement prefix and the cache
    // demonstrably absorbs the revisits.
    synth::SynthesisOptions reuse_options = options;
    reuse_options.bound = 5;
    const synth::SuiteResult reuse =
        synth::synthesize_suite(model, "sc_per_loc", reuse_options);
    EXPECT_GT(reuse.solver.bases_reused, 0u);
    // The counters are observability only: suites stay byte-identical.
    EXPECT_EQ(suite_fingerprint(fresh), suite_fingerprint(live));
}

TEST(ObsReport, SolverSessionCountersAppearInSchemaV5Json)
{
    // The three incremental counters moved the schema to v2; the base
    // cache's bases_built/bases_reused (and the "relax" phase) moved it
    // to v3; the fault-tolerant runtime's counters and "cancelled" moved
    // it to v4; the latency percentiles, allocation breakdowns, failures
    // array, and observed-cost re-split counters moved it to v5. Pin the
    // version and the exact keys so a silent rename or removal fails here
    // rather than in a downstream consumer.
    EXPECT_EQ(obs::kMetricsSchemaVersion, 5);

    const mtm::Model model = mtm::x86t_elt();
    obs::RunReport report;
    report.tool = "obs_test";
    report.model = "x86t_elt";
    report.backend = "sat";
    report.bound = 4;
    report.jobs = 1;
    synth::SynthesisOptions options = obs_options(1, synth::Backend::kSat);
    options.bound = 5;  // deep enough for guard retirement to occur
    options.sat_incremental = true;
    options.collect_metrics = true;
    report.suites.push_back(obs::suite_report(
        synth::synthesize_suite(model, "invlpg", options)));

    const std::string json = obs::report_to_json(report);
    EXPECT_TRUE(is_valid_json(json)) << json;
    EXPECT_NE(json.find("\"schema_version\": 5"), std::string::npos);
    // Each solver object (one per suite, one in totals) carries the keys.
    EXPECT_EQ(count_occurrences(json, "\"assumed_literals\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"retired_activations\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"retained_clauses\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"bases_built\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"bases_reused\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"relax\""), 2);
    // v4: the robustness keys, in every suite and scheduler object.
    EXPECT_EQ(count_occurrences(json, "\"cancelled\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"job_faults\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"shard_retries\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"shards_quarantined\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"checkpoint_shards_saved\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"checkpoint_shards_replayed\""), 2);
    // v5: every phase entry (9 per phases object, 2 phases objects)
    // carries the latency percentiles and the allocation slot.
    EXPECT_EQ(count_occurrences(json, "\"p50_ns\""), 2 * obs::kPhaseCount);
    EXPECT_EQ(count_occurrences(json, "\"p90_ns\""), 2 * obs::kPhaseCount);
    EXPECT_EQ(count_occurrences(json, "\"p99_ns\""), 2 * obs::kPhaseCount);
    EXPECT_EQ(count_occurrences(json, "\"alloc_count\""),
              2 * obs::kPhaseCount);
    EXPECT_EQ(count_occurrences(json, "\"alloc_bytes\""),
              2 * obs::kPhaseCount);
    // v5: the site table, the failures array, and the observed-cost
    // re-split counters, once per suite object / scheduler object.
    EXPECT_EQ(count_occurrences(json, "\"alloc_sites\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"failures\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"observed_cost_resplits\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"resplit_threshold_min\""), 2);
    EXPECT_EQ(count_occurrences(json, "\"resplit_threshold_max\""), 2);
    for (int s = 0; s < obs::kAllocSiteCount; ++s) {
        EXPECT_NE(json.find(obs::alloc_site_name(
                      static_cast<obs::AllocSite>(s))),
                  std::string::npos);
    }
    // The collected run carries real per-solve latency samples.
    EXPECT_NE(json.find("\"sat_solve\": {"), std::string::npos);
    EXPECT_GT(report.suites[0].phases
                  .latency[static_cast<std::size_t>(obs::Phase::kSatSolve)]
                  .total(),
              0u);
    // And the totals really accumulate the session's counters.
    EXPECT_GT(report.totals().solver.retired_activations, 0u);
}

// ---------------------------------------------------------------------------
// Latency histograms: log2 buckets, exact concurrent merges.

TEST(LatencyHistogram, BucketEdgesAndPercentiles)
{
    EXPECT_EQ(obs::latency_bucket(0), 0);
    EXPECT_EQ(obs::latency_bucket(1), 1);
    EXPECT_EQ(obs::latency_bucket(2), 2);
    EXPECT_EQ(obs::latency_bucket(3), 2);
    EXPECT_EQ(obs::latency_bucket(4), 3);
    EXPECT_EQ(obs::latency_bucket(~std::uint64_t{0}),
              obs::kLatencyBucketCount - 1);

    obs::LatencyHistogram hist;
    EXPECT_EQ(hist.percentile_nanos(0.5), 0u);  // empty
    hist.record(0);
    hist.record(1);
    hist.record(1000);  // bit-width 10: bucket upper edge 1023
    EXPECT_EQ(hist.total(), 3u);
    EXPECT_EQ(hist.percentile_nanos(0.0), 0u);
    EXPECT_EQ(hist.percentile_nanos(0.5), 1u);
    EXPECT_EQ(hist.percentile_nanos(1.0), 1023u);
}

TEST(LatencyHistogram, ConcurrentRecordingMergesExactly)
{
    // 8 threads hammer 4 worker cells (two threads per cell, breaking the
    // single-writer convention on purpose) with a deterministic sample
    // stream; the merged per-bucket counts must equal a serial replay of
    // the same stream — the histogram merge is exact, not approximate.
    constexpr int kThreads = 8;
    constexpr int kSamples = 20000;
    obs::MetricsRegistry registry(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry, t] {
            const obs::Phase phase =
                static_cast<obs::Phase>(t % obs::kPhaseCount);
            for (int i = 0; i < kSamples; ++i) {
                registry.record_latency(
                    t % 4, phase,
                    static_cast<std::uint64_t>(i) * 37 % 100000);
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    obs::LatencyHistogram expected;
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kSamples; ++i) {
            expected.record(static_cast<std::uint64_t>(i) * 37 % 100000);
        }
    }
    const obs::PhaseTotals totals = registry.merged();
    for (int b = 0; b < obs::kLatencyBucketCount; ++b) {
        std::uint64_t merged = 0;
        for (int p = 0; p < obs::kPhaseCount; ++p) {
            merged += totals.latency[static_cast<std::size_t>(p)]
                          .buckets[static_cast<std::size_t>(b)];
        }
        EXPECT_EQ(merged, expected.buckets[static_cast<std::size_t>(b)])
            << "bucket " << b;
    }
    EXPECT_EQ(registry.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Allocation tracking: per-phase/per-site sums equal the process-wide
// operator-new proxy over the bound region.

TEST(AllocTracker, SumsMatchTheProcessWideProxy)
{
    obs::AllocTracker tracker(2);
    EXPECT_FALSE(obs::alloc_tracking_bound());
    const std::uint64_t before = obs::alloc_count();
    obs::bind_alloc_tracker(&tracker, 1);
    {
        // Untagged region: lands in kSkeletonEnum / kSiteOther.
        auto* spill = new std::vector<int>(100);
        delete spill;
    }
    {
        obs::ScopedAllocPhase phase(obs::Phase::kDerive);
        std::vector<std::string> rows;
        for (int i = 0; i < 16; ++i) {
            rows.emplace_back(static_cast<std::size_t>(64 + i), 'x');
        }
    }
    {
        obs::ScopedAllocPhase phase(obs::Phase::kJudge);
        const obs::ScopedAllocSite site(
            obs::AllocSite::kSiteJudgeVerdict);
        auto* verdict = new std::string(256, 'y');
        delete verdict;
    }
    obs::bind_alloc_tracker(nullptr, 0);
    const std::uint64_t proxy_delta = obs::alloc_count() - before;

    const obs::AllocTotals totals = tracker.merged();
    EXPECT_GT(totals.total_count(), 0u);
    // THE sum contract: every allocation of the bound region was
    // attributed, so the per-phase table sums exactly to the process-wide
    // proxy delta (this test body is the only thread allocating).
    EXPECT_EQ(totals.total_count(), proxy_delta);
    std::uint64_t site_count = 0;
    std::uint64_t site_bytes = 0;
    for (const obs::AllocSlot& slot : totals.sites) {
        site_count += slot.count;
        site_bytes += slot.bytes;
    }
    // ... and the site table covers the same allocations.
    EXPECT_EQ(site_count, totals.total_count());
    EXPECT_EQ(site_bytes, totals.total_bytes());
    EXPECT_EQ(tracker.worker_count(1), proxy_delta);
    EXPECT_EQ(tracker.worker_count(0), 0u);
    EXPECT_EQ(tracker.dropped(), 0u);
    using Idx = std::size_t;
    EXPECT_GT(totals.phases[static_cast<Idx>(obs::Phase::kSkeletonEnum)]
                  .count, 0u);
    EXPECT_GT(totals.phases[static_cast<Idx>(obs::Phase::kDerive)].count,
              0u);
    EXPECT_GT(totals.phases[static_cast<Idx>(obs::Phase::kJudge)].count,
              0u);
    EXPECT_GT(totals.sites[static_cast<Idx>(
                  obs::AllocSite::kSiteJudgeVerdict)].count, 0u);
    // After unbinding, allocations flow past the tracker again.
    const std::uint64_t settled = tracker.merged().total_count();
    auto* untracked = new std::string(512, 'z');
    delete untracked;
    EXPECT_EQ(tracker.merged().total_count(), settled);
}

TEST(AllocTracker, OutOfRangeWorkersAreDroppedNotCrashed)
{
    obs::AllocTracker tracker(1);
    tracker.add(-1, 0, 0, 8);
    tracker.add(1, 0, 0, 8);
    tracker.add(0, obs::kPhaseCount, 0, 8);
    tracker.add(0, 0, obs::kAllocSiteCount, 8);
    tracker.add(0, 0, 0, 8);
    EXPECT_EQ(tracker.dropped(), 4u);
    EXPECT_EQ(tracker.merged().total_count(), 1u);
}

TEST(ObsEngine, TrackAllocsFillsSuiteAllocTotals)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions options =
        obs_options(2, synth::Backend::kEnumerative);
    options.collect_metrics = true;
    options.track_allocs = true;
    const synth::SuiteResult suite =
        synth::synthesize_suite(model, "sc_per_loc", options);
    EXPECT_GT(suite.allocs.total_count(), 0u);
    std::uint64_t site_count = 0;
    for (const obs::AllocSlot& slot : suite.allocs.sites) {
        site_count += slot.count;
    }
    EXPECT_EQ(site_count, suite.allocs.total_count())
        << "phase and site tables must cover the same allocations";
    using Idx = std::size_t;
    EXPECT_GT(suite.allocs
                  .phases[static_cast<Idx>(obs::Phase::kSkeletonEnum)]
                  .count, 0u);
    EXPECT_GT(suite.allocs
                  .sites[static_cast<Idx>(
                      obs::AllocSite::kSiteCanonicalKey)].count, 0u);

    // Off (the default): the breakdown stays all-zero.
    options.track_allocs = false;
    const synth::SuiteResult off =
        synth::synthesize_suite(model, "sc_per_loc", options);
    EXPECT_EQ(off.allocs.total_count(), 0u);
    EXPECT_EQ(off.allocs.total_bytes(), 0u);
}

}  // namespace
}  // namespace transform
