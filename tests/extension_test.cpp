/// \file
/// Tests for the full-TLB-flush IPI extension (INVLPGALL — the paper's
/// section III-B2 names additional IPIs as future work) and for the
/// RMW-dirty-bit ablation across both execution-space backends.
#include <gtest/gtest.h>

#include "elt/derive.h"
#include "elt/litmus.h"
#include "elt/serialize.h"
#include "mtm/encoding.h"
#include "mtm/model.h"
#include "mtm/relax.h"
#include "synth/engine.h"
#include "synth/exec_enum.h"
#include "synth/skeleton.h"

namespace transform {
namespace {

using elt::Event;
using elt::EventId;
using elt::EventKind;
using elt::Execution;
using elt::kNone;
using elt::Program;
using elt::ProgramBuilder;

/// R x miss; INVLPGALL; R x miss — the flush forces the second walk.
Execution
flush_forces_walk()
{
    ProgramBuilder b;
    b.thread();
    const EventId r0 = b.R(0);
    const EventId w0 = b.rptw(r0);
    b.invlpg_all();
    const EventId r2 = b.R(0);
    const EventId w2 = b.rptw(r2);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r0] = w0;
    e.ptw_src[r2] = w2;
    e.rf_src[w0] = kNone;
    e.rf_src[w2] = kNone;
    return e;
}

TEST(FullFlush, ValidatesAndDerives)
{
    const Execution e = flush_forces_walk();
    EXPECT_TRUE(e.program.validate().empty());
    const auto d = elt::derive(e);
    EXPECT_TRUE(d.well_formed) << (d.problems.empty() ? "" : d.problems[0]);
    EXPECT_TRUE(mtm::x86t_elt().permits(e));
}

TEST(FullFlush, BlocksTlbHitsAcrossIt)
{
    // Re-target the second read at the first walk: sharing a TLB entry
    // across a full flush is ill-formed.
    Execution e = flush_forces_walk();
    EventId first_walk = kNone;
    EventId second_read = kNone;
    for (EventId id = 0; id < e.program.num_events(); ++id) {
        if (e.program.event(id).kind == EventKind::kRptw &&
            first_walk == kNone) {
            first_walk = id;
        }
        if (e.program.event(id).kind == EventKind::kRead &&
            e.program.position_of(id) == 2) {
            second_read = id;
        }
    }
    ASSERT_NE(second_read, kNone);
    e.ptw_src[second_read] = first_walk;
    EXPECT_FALSE(elt::derive(e).well_formed);
}

TEST(FullFlush, BlocksHitsForEveryVa)
{
    // Unlike a targeted INVLPG x, the flush also evicts y's entry.
    ProgramBuilder b;
    b.thread();
    const EventId r0 = b.R(1);  // R y miss
    const EventId w0 = b.rptw(r0);
    b.invlpg_all();
    const EventId r2 = b.R(1);  // must re-walk even though the flush
    const EventId w2 = b.rptw(r2);  // names no VA
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r0] = w0;
    e.ptw_src[r2] = w0;  // illegal hit across the flush
    e.rf_src[w0] = kNone;
    e.rf_src[w2] = kNone;
    EXPECT_FALSE(elt::derive(e).well_formed);
    e.ptw_src[r2] = w2;
    EXPECT_TRUE(elt::derive(e).well_formed);
}

TEST(FullFlush, ValidationRejectsOperands)
{
    Program p;
    p.add_thread();
    Event flush{EventKind::kInvlpgAll, 0, /*va=*/0, kNone, kNone, kNone};
    p.add_event(flush);
    EXPECT_FALSE(p.validate().empty());
}

TEST(FullFlush, UselessFlushIsIllFormed)
{
    // A flush with no later same-core access serves no purpose.
    ProgramBuilder b;
    b.thread();
    const EventId r0 = b.R(0);
    const EventId w0 = b.rptw(r0);
    b.invlpg_all();
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r0] = w0;
    e.rf_src[w0] = kNone;
    EXPECT_FALSE(elt::derive(e).well_formed);
}

TEST(FullFlush, RemovableInIsolation)
{
    const Execution e = flush_forces_walk();
    bool found = false;
    for (const auto& relaxation : mtm::applicable_relaxations(e.program)) {
        if (relaxation.kind ==
                mtm::Relaxation::Kind::kRemoveSpuriousInvlpg &&
            e.program.event(relaxation.target).kind ==
                EventKind::kInvlpgAll) {
            found = true;
            const Execution relaxed = mtm::apply_relaxation(e, relaxation);
            EXPECT_EQ(relaxed.program.num_events(),
                      e.program.num_events() - 1);
            EXPECT_TRUE(elt::derive(relaxed).well_formed);
        }
    }
    EXPECT_TRUE(found);
}

TEST(FullFlush, LitmusRoundTrip)
{
    const std::string text =
        "elt flushy\nthread P0\n  R x miss\n  INVLPGALL\n  R x miss\n";
    std::string error;
    const auto parsed = elt::parse_litmus(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->program.num_events(), 5);
    const std::string emitted =
        elt::program_to_litmus(parsed->program, "flushy");
    EXPECT_NE(emitted.find("INVLPGALL"), std::string::npos);
    const auto again = elt::parse_litmus(emitted, &error);
    ASSERT_TRUE(again.has_value()) << error;
    EXPECT_EQ(again->program.num_events(), parsed->program.num_events());
}

TEST(FullFlush, XmlRoundTrip)
{
    const Execution e = flush_forces_walk();
    const auto parsed = elt::execution_from_xml(elt::execution_to_xml(e));
    ASSERT_TRUE(parsed.has_value());
    bool saw_flush = false;
    for (EventId id = 0; id < parsed->program.num_events(); ++id) {
        saw_flush = saw_flush ||
                    parsed->program.event(id).kind == EventKind::kInvlpgAll;
    }
    EXPECT_TRUE(saw_flush);
}

TEST(FullFlush, BackendsAgreeOnFlushPrograms)
{
    const Program program = flush_forces_walk().program;
    const mtm::Model model = mtm::x86t_elt();
    int explicit_count = 0;
    synth::for_each_execution(program, true, [&](const Execution&) {
        ++explicit_count;
        return true;
    });
    mtm::ProgramEncoding encoding(program, &model);
    EXPECT_EQ(static_cast<int>(encoding.enumerate().size()), explicit_count);
}

TEST(FullFlush, SkeletonsGenerateItWhenEnabled)
{
    synth::SkeletonOptions opt;
    opt.num_events = 4;
    opt.allow_full_flush = true;
    bool saw_flush = false;
    synth::for_each_skeleton(opt, [&](const Program& p) {
        EXPECT_TRUE(p.validate().empty());
        for (EventId id = 0; id < p.num_events(); ++id) {
            saw_flush = saw_flush ||
                        p.event(id).kind == EventKind::kInvlpgAll;
        }
        return true;
    });
    EXPECT_TRUE(saw_flush);

    // And never without the flag.
    opt.allow_full_flush = false;
    synth::for_each_skeleton(opt, [&](const Program& p) {
        for (EventId id = 0; id < p.num_events(); ++id) {
            EXPECT_NE(p.event(id).kind, EventKind::kInvlpgAll);
        }
        return true;
    });
}

TEST(FullFlush, SpuriousInvalidationsNeverSurviveMinimality)
{
    // A spurious invalidation (targeted or flush) is removable in
    // isolation and only *blocks* TLB reuse, so it can never be
    // load-bearing for a violation: no synthesized minimal test contains
    // one.
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions opt;
    opt.min_bound = 4;
    opt.bound = 6;
    opt.allow_full_flush = true;
    for (const auto& axiom : {"sc_per_loc", "invlpg", "tlb_causality"}) {
        const auto suite = synth::synthesize_suite(model, axiom, opt);
        for (const auto& test : suite.tests) {
            for (EventId id = 0; id < test.witness.program.num_events();
                 ++id) {
                const Event& e = test.witness.program.event(id);
                EXPECT_FALSE(e.kind == EventKind::kInvlpgAll ||
                             (e.kind == EventKind::kInvlpg &&
                              e.remap_src == kNone))
                    << axiom << ": spurious invalidation in minimal test";
            }
        }
    }
}

TEST(DirtyBitRmw, BackendsAgreeOnRdbPrograms)
{
    // The ablation's Rdb ghost must flow through both backends alike.
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(0);
    b.rdb(w);
    b.wdb(w);
    b.rptw(w);
    const Program program = b.build();
    ASSERT_TRUE(program.validate().empty());
    const mtm::Model model = mtm::x86t_elt();
    int explicit_count = 0;
    synth::for_each_execution(program, true, [&](const Execution& e) {
        EXPECT_TRUE(elt::derive(e).well_formed);
        ++explicit_count;
        return true;
    });
    mtm::ProgramEncoding encoding(program, &model);
    EXPECT_EQ(static_cast<int>(encoding.enumerate().size()), explicit_count);
    EXPECT_GT(explicit_count, 0);
}

}  // namespace
}  // namespace transform
