/// \file
/// Unit tests for ELT program construction, positions and validation.
#include <gtest/gtest.h>

#include "elt/fixtures.h"
#include "elt/printer.h"
#include "elt/program.h"

namespace transform::elt {
namespace {

TEST(EventKind, Classification)
{
    EXPECT_TRUE(is_user(EventKind::kRead));
    EXPECT_TRUE(is_user(EventKind::kMfence));
    EXPECT_TRUE(is_support(EventKind::kWpte));
    EXPECT_TRUE(is_support(EventKind::kInvlpg));
    EXPECT_TRUE(is_ghost(EventKind::kRptw));
    EXPECT_TRUE(is_ghost(EventKind::kWdb));
    EXPECT_FALSE(is_memory(EventKind::kInvlpg));
    EXPECT_FALSE(is_memory(EventKind::kMfence));
    EXPECT_TRUE(is_memory(EventKind::kWpte));
    EXPECT_TRUE(is_write_like(EventKind::kWdb));
    EXPECT_TRUE(is_read_like(EventKind::kRptw));
    EXPECT_TRUE(is_data_access(EventKind::kWrite));
    EXPECT_TRUE(is_pte_access(EventKind::kWpte));
    EXPECT_FALSE(is_pte_access(EventKind::kRead));
}

TEST(Program, BuilderPositions)
{
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(0);
    const EventId wdb = b.wdb(w);
    const EventId rptw = b.rptw(w);
    const EventId r = b.R(0);
    Program p = b.build();
    EXPECT_EQ(p.num_threads(), 1);
    EXPECT_EQ(p.num_events(), 4);
    EXPECT_EQ(p.position_of(w), 0);
    EXPECT_EQ(p.position_of(wdb), 0);   // ghosts inherit parent position
    EXPECT_EQ(p.position_of(rptw), 0);
    EXPECT_EQ(p.position_of(r), 1);
    // Same-position events (an instruction and its ghosts) are unordered;
    // distinct positions order as usual, ghosts included.
    EXPECT_FALSE(p.precedes(wdb, rptw));
    EXPECT_FALSE(p.precedes(rptw, w));
    EXPECT_TRUE(p.precedes(w, r));
    EXPECT_TRUE(p.precedes(wdb, r));
    EXPECT_FALSE(p.precedes(r, w));
}

TEST(Program, GhostLookup)
{
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(0);
    const EventId wdb = b.wdb(w);
    const EventId rptw = b.rptw(w);
    const Program p = b.build();
    EXPECT_EQ(p.wdb_of(w), wdb);
    EXPECT_EQ(p.rptw_of(w), rptw);
    EXPECT_EQ(p.rdb_of(w), kNone);
}

TEST(Program, NumVasAndPas)
{
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(0);
    b.wdb(w);
    b.rptw(w);
    b.R(1);  // will fail validation (no walk) but counts VAs fine
    const EventId p1 = b.wpte(1, 3);
    b.invlpg_for(p1);
    const Program p = b.build();
    EXPECT_EQ(p.num_vas(), 2);
    EXPECT_EQ(p.num_pas(), 4);  // initial frames 0,1 plus Wpte target 3
}

TEST(Program, ValidationAcceptsFixtures)
{
    EXPECT_TRUE(fixtures::fig2a_sb_mcm().program.validate(false).empty());
    EXPECT_TRUE(fixtures::fig2b_sb_elt().program.validate().empty());
    EXPECT_TRUE(fixtures::fig2c_sb_elt_aliased().program.validate().empty());
    EXPECT_TRUE(fixtures::fig4_remap_chain().program.validate().empty());
    EXPECT_TRUE(fixtures::fig5a_shared_walk().program.validate().empty());
    EXPECT_TRUE(fixtures::fig5b_invlpg_forces_walk().program.validate().empty());
    EXPECT_TRUE(fixtures::fig6_remap_disambiguation().program.validate().empty());
    EXPECT_TRUE(fixtures::fig8_non_minimal_mcm().program.validate(false).empty());
    EXPECT_TRUE(fixtures::fig10a_ptwalk2().program.validate().empty());
    EXPECT_TRUE(fixtures::fig10b_dirtybit3().program.validate().empty());
    EXPECT_TRUE(fixtures::fig11_new_elt().program.validate().empty());
}

TEST(Program, ValidationRejectsWriteWithoutWdb)
{
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(0);
    b.rptw(w);  // walk but no dirty-bit update
    const Program p = b.build();
    EXPECT_FALSE(p.validate().empty());
}

TEST(Program, ValidationRejectsWpteWithoutInvlpg)
{
    ProgramBuilder b;
    b.thread();
    b.wpte(0, 1);  // no INVLPG anywhere
    const Program p = b.build();
    EXPECT_FALSE(p.validate().empty());
}

TEST(Program, ValidationRejectsInvlpgBeforeItsWpte)
{
    Program p;
    p.add_thread();
    Event inv{EventKind::kInvlpg, 0, 0, kNone, kNone, 1};
    p.add_event(inv);  // references the Wpte added next
    Event wpte{EventKind::kWpte, 0, 0, 1, kNone, kNone};
    p.add_event(wpte);
    EXPECT_FALSE(p.validate().empty());
}

TEST(Program, ValidationRejectsCrossVaRemap)
{
    ProgramBuilder b;
    b.thread();
    const EventId wpte = b.wpte(0, 1);
    const Program before = b.build();
    (void)before;
    Program p = b.build();
    Event inv{EventKind::kInvlpg, 0, /*va=*/1, kNone, kNone, wpte};
    p.add_event(inv);
    EXPECT_FALSE(p.validate().empty());
}

TEST(Program, ValidationRejectsNonAdjacentRmw)
{
    ProgramBuilder b;
    b.thread();
    const EventId r = b.R(0);
    const EventId rptw = b.rptw(r);
    (void)rptw;
    b.mfence();
    const EventId w = b.W(0);
    b.wdb(w);
    b.rmw(r, w);  // an MFENCE separates the pair
    const Program p = b.build();
    EXPECT_FALSE(p.validate().empty());
}

TEST(Printer, ProgramTableMentionsEveryEvent)
{
    const Program p = fixtures::fig10a_ptwalk2().program;
    const std::string table = program_to_string(p);
    EXPECT_NE(table.find("WPTE0"), std::string::npos);
    EXPECT_NE(table.find("INVLPG1"), std::string::npos);
    EXPECT_NE(table.find("R2"), std::string::npos);
    EXPECT_NE(table.find("Rptw3"), std::string::npos);
}

TEST(Printer, EventToStringFormats)
{
    Event wpte{EventKind::kWpte, 0, 0, 2, kNone, kNone};
    EXPECT_EQ(event_to_string(5, wpte), "WPTE5 z = VA x -> PA c");
    Event inv{EventKind::kInvlpg, 0, 1, kNone, kNone, kNone};
    EXPECT_EQ(event_to_string(2, inv), "INVLPG2 y (spurious)");
}

TEST(Names, AddressNames)
{
    EXPECT_EQ(va_name(0), "x");
    EXPECT_EQ(va_name(1), "y");
    EXPECT_EQ(pte_name(0), "z");
    EXPECT_EQ(pte_name(1), "v");
    EXPECT_EQ(pa_name(0), "a");
    EXPECT_EQ(pa_name(2), "c");
}

}  // namespace
}  // namespace transform::elt
