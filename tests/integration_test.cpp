/// \file
/// Integration tests: the explicit execution enumerator and the
/// SAT/relational backend must agree on the execution space of every
/// program, and the synthesis pipeline must be backend-independent.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "mtm/encoding.h"
#include "synth/engine.h"
#include "synth/exec_enum.h"
#include "synth/skeleton.h"

namespace transform {
namespace {

using elt::Execution;
using elt::Program;

/// Fingerprint of an execution's witness choices, for set comparison.
std::string
fingerprint(const Execution& e)
{
    std::string out;
    for (int i = 0; i < e.program.num_events(); ++i) {
        out += std::to_string(e.rf_src[i]) + "," +
               std::to_string(e.co_pos[i]) + "," +
               std::to_string(e.ptw_src[i]) + "," +
               std::to_string(e.co_pa_pos[i]) + ";";
    }
    return out;
}

void
expect_backends_agree(const Program& program, const mtm::Model& model)
{
    std::set<std::string> explicit_set;
    synth::for_each_execution(program, model.vm_aware(),
                              [&](const Execution& e) {
                                  explicit_set.insert(fingerprint(e));
                                  return true;
                              });
    mtm::ProgramEncoding encoding(program, &model);
    std::set<std::string> sat_set;
    for (const Execution& e : encoding.enumerate()) {
        sat_set.insert(fingerprint(e));
    }
    EXPECT_EQ(explicit_set, sat_set);
}

TEST(BackendEquivalence, PaperPrograms)
{
    const mtm::Model model = mtm::x86t_elt();
    expect_backends_agree(elt::fixtures::fig10a_ptwalk2().program, model);
    expect_backends_agree(elt::fixtures::fig11_new_elt().program, model);
    expect_backends_agree(elt::fixtures::fig5a_shared_walk().program, model);
    expect_backends_agree(elt::fixtures::fig5b_invlpg_forces_walk().program,
                          model);
}

TEST(BackendEquivalence, McmPrograms)
{
    const mtm::Model tso = mtm::x86tso();
    expect_backends_agree(elt::fixtures::fig2a_sb_mcm().program, tso);
    expect_backends_agree(elt::fixtures::fig8_non_minimal_mcm().program, tso);
}

TEST(BackendEquivalence, SampledSkeletons)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SkeletonOptions opt;
    opt.num_events = 4;
    opt.max_threads = 2;
    int sampled = 0;
    synth::for_each_skeleton(opt, [&](const Program& p) {
        expect_backends_agree(p, model);
        return ++sampled < 12;  // a spread of shapes, kept fast
    });
    EXPECT_GT(sampled, 0);
}

TEST(SynthesisBackends, SameSuiteAtSmallBound)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions opt;
    opt.min_bound = 4;
    opt.bound = 4;
    opt.max_threads = 2;
    opt.max_vas = 2;
    opt.backend = synth::Backend::kEnumerative;
    const auto enum_suite = synth::synthesize_suite(model, "invlpg", opt);
    opt.backend = synth::Backend::kSat;
    const auto sat_suite = synth::synthesize_suite(model, "invlpg", opt);

    std::set<std::string> enum_keys;
    for (const auto& t : enum_suite.tests) {
        enum_keys.insert(t.canonical_key);
    }
    std::set<std::string> sat_keys;
    for (const auto& t : sat_suite.tests) {
        sat_keys.insert(t.canonical_key);
    }
    EXPECT_EQ(enum_keys, sat_keys);
}

TEST(Pipeline, EveryFixtureProgramRoundTripsThroughEncoding)
{
    // Programs with a forbidden witness per the concrete evaluator must
    // also have one per the SAT backend, and vice versa, axiom by axiom.
    const mtm::Model model = mtm::x86t_elt();
    const std::vector<Execution> fixtures = {
        elt::fixtures::fig10a_ptwalk2(),
        elt::fixtures::fig10b_dirtybit3(),
        elt::fixtures::fig11_new_elt(),
        elt::fixtures::fig5a_shared_walk(),
    };
    for (const Execution& fixture : fixtures) {
        mtm::ProgramEncoding encoding(fixture.program, &model);
        for (const auto& axiom : model.axioms()) {
            bool explicit_violation = false;
            synth::for_each_execution(
                fixture.program, true, [&](const Execution& e) {
                    const auto d = elt::derive(e);
                    if (!d.well_formed) {
                        return true;
                    }
                    const auto violated =
                        model.violated_axioms(e.program, d);
                    for (const std::string& name : violated) {
                        explicit_violation =
                            explicit_violation || name == axiom.name;
                    }
                    return !explicit_violation;
                });
            EXPECT_EQ(explicit_violation, encoding.exists_violating(axiom.name))
                << axiom.name;
        }
    }
}

}  // namespace
}  // namespace transform
