/// \file
/// Unit tests for the spanning-set criteria (interesting + minimal).
#include <gtest/gtest.h>

#include "elt/fixtures.h"
#include "mtm/model.h"
#include "synth/minimality.h"

namespace transform::synth {
namespace {

using elt::Execution;

TEST(Minimality, ContainsWrite)
{
    EXPECT_TRUE(contains_write(elt::fixtures::fig10a_ptwalk2().program));
    EXPECT_TRUE(contains_write(elt::fixtures::fig2b_sb_elt().program));
    // A lone read (with its walk) has no writes.
    elt::ProgramBuilder b;
    b.thread();
    const auto r = b.R(0);
    b.rptw(r);
    EXPECT_FALSE(contains_write(b.build()));
}

TEST(Minimality, Ptwalk2IsMinimal)
{
    const mtm::Model model = mtm::x86t_elt();
    const MinimalityVerdict verdict =
        judge(model, elt::fixtures::fig10a_ptwalk2());
    EXPECT_TRUE(verdict.interesting);
    EXPECT_TRUE(verdict.minimal) << verdict.blocking_relaxation;
    // Forbidden via both sc_per_loc and invlpg, as the paper notes.
    EXPECT_EQ(verdict.violated.size(), 2u);
}

TEST(Minimality, Fig11IsMinimal)
{
    const mtm::Model model = mtm::x86t_elt();
    const MinimalityVerdict verdict =
        judge(model, elt::fixtures::fig11_new_elt());
    EXPECT_TRUE(verdict.interesting);
    EXPECT_TRUE(verdict.minimal) << verdict.blocking_relaxation;
}

TEST(Minimality, Fig10bIsPermittedHenceNotInteresting)
{
    const mtm::Model model = mtm::x86t_elt();
    const MinimalityVerdict verdict =
        judge(model, elt::fixtures::fig10b_dirtybit3());
    EXPECT_FALSE(verdict.interesting);
    EXPECT_TRUE(verdict.violated.empty());
}

TEST(Minimality, Fig8IsForbiddenButNotMinimal)
{
    // The paper's worked example of the minimality criterion: the extra
    // write W4 can be removed and the test stays forbidden.
    const mtm::Model tso = mtm::x86tso();
    const MinimalityVerdict verdict =
        judge(tso, elt::fixtures::fig8_non_minimal_mcm());
    EXPECT_TRUE(verdict.interesting);
    EXPECT_FALSE(verdict.minimal);
    EXPECT_FALSE(verdict.blocking_relaxation.empty());
}

TEST(Minimality, Fig2cIsForbiddenButNotMinimal)
{
    // The aliased sb ELT is forbidden yet reducible (the coherence cycle
    // survives the removal of, e.g., the x-write on C0).
    const mtm::Model model = mtm::x86t_elt();
    const MinimalityVerdict verdict =
        judge(model, elt::fixtures::fig2c_sb_elt_aliased());
    EXPECT_TRUE(verdict.interesting);
    EXPECT_FALSE(verdict.minimal);
}

TEST(Minimality, PermittedExecutionNotInteresting)
{
    const mtm::Model model = mtm::x86t_elt();
    const MinimalityVerdict verdict =
        judge(model, elt::fixtures::fig4_remap_chain());
    EXPECT_FALSE(verdict.interesting);
}

}  // namespace
}  // namespace transform::synth
