/// \file
/// Unit tests for the relaxation engine (section IV-B removal groups).
#include <gtest/gtest.h>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "mtm/model.h"
#include "mtm/relax.h"

namespace transform::mtm {
namespace {

using elt::EventId;
using elt::EventKind;
using elt::Execution;
using elt::kNone;

TEST(Relax, ApplicableRelaxationCounts)
{
    // ptwalk2: WPTE0, INVLPG1 (remap-invoked), R2, Rptw3.
    const Execution e = elt::fixtures::fig10a_ptwalk2();
    const auto relaxations = applicable_relaxations(e.program);
    // Removable: WPTE0 (with its INVLPG), R2 (with its walk). The
    // remap-invoked INVLPG and the ghost walk are not separately removable.
    EXPECT_EQ(relaxations.size(), 2u);
}

TEST(Relax, SpuriousInvlpgIsRemovableAlone)
{
    const Execution e = elt::fixtures::fig5b_invlpg_forces_walk();
    const auto relaxations = applicable_relaxations(e.program);
    // R0, INVLPG1 (spurious), R2 are each removable.
    EXPECT_EQ(relaxations.size(), 3u);
    bool has_spurious = false;
    for (const auto& r : relaxations) {
        has_spurious = has_spurious ||
                       r.kind == Relaxation::Kind::kRemoveSpuriousInvlpg;
    }
    EXPECT_TRUE(has_spurious);
}

TEST(Relax, RemoveWpteRemovesItsInvlpgs)
{
    const Execution e = elt::fixtures::fig11_new_elt();
    // Find the Wpte relaxation.
    for (const auto& r : applicable_relaxations(e.program)) {
        if (r.kind != Relaxation::Kind::kRemoveWpte) {
            continue;
        }
        const Execution relaxed = apply_relaxation(e, r);
        // WPTE0 + INVLPG1 + INVLPG2 gone: R3 and its walk remain.
        EXPECT_EQ(relaxed.program.num_events(), 2);
        EXPECT_TRUE(relaxed.program.validate().empty());
        const auto d = elt::derive(relaxed);
        EXPECT_TRUE(d.well_formed);
        EXPECT_TRUE(x86t_elt().permits(relaxed));
    }
}

TEST(Relax, RemoveUserEventRemovesGhosts)
{
    const Execution e = elt::fixtures::fig10a_ptwalk2();
    for (const auto& r : applicable_relaxations(e.program)) {
        if (r.kind != Relaxation::Kind::kRemoveUserEvent) {
            continue;
        }
        const Execution relaxed = apply_relaxation(e, r);
        // R2 and Rptw3 both go; WPTE0 + INVLPG1 remain.
        EXPECT_EQ(relaxed.program.num_events(), 2);
        EXPECT_TRUE(elt::derive(relaxed).well_formed);
    }
}

TEST(Relax, WalkReparentsToSurvivingUser)
{
    // Fig 5a: R0 (with walk) and R1 (hit). Removing R0 must keep the walk,
    // re-parented to R1.
    const Execution e = elt::fixtures::fig5a_shared_walk();
    const auto relaxations = applicable_relaxations(e.program);
    for (const auto& r : relaxations) {
        if (r.kind != Relaxation::Kind::kRemoveUserEvent || r.target != 0) {
            continue;
        }
        const Execution relaxed = apply_relaxation(e, r);
        EXPECT_EQ(relaxed.program.num_events(), 2);  // R1 + the walk
        int walks = 0;
        for (EventId id = 0; id < relaxed.program.num_events(); ++id) {
            if (relaxed.program.event(id).kind == EventKind::kRptw) {
                ++walks;
                EXPECT_NE(relaxed.program.event(id).parent, kNone);
            }
        }
        EXPECT_EQ(walks, 1);
        EXPECT_TRUE(elt::derive(relaxed).well_formed);
    }
}

TEST(Relax, ReadSourcedByRemovedWriteFallsBackToInit)
{
    const Execution e = elt::fixtures::fig2a_sb_mcm();
    // Remove W2 (the write R1 reads from).
    const Execution relaxed = remove_events(e, {2});
    EXPECT_EQ(relaxed.program.num_events(), 3);
    for (EventId id = 0; id < relaxed.program.num_events(); ++id) {
        if (relaxed.program.event(id).kind == EventKind::kRead &&
            relaxed.program.event(id).va == 1) {
            EXPECT_EQ(relaxed.rf_src[id], kNone);
        }
    }
    EXPECT_TRUE(elt::derive(relaxed, {false}).well_formed);
}

TEST(Relax, DropRmwKeepsEvents)
{
    elt::ProgramBuilder b;
    b.thread();
    const EventId r = b.R(0);
    const EventId rptw = b.rptw(r);
    const EventId w = b.W(0);
    const EventId wdb = b.wdb(w);
    b.rmw(r, w);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r] = rptw;
    e.ptw_src[w] = rptw;
    e.rf_src[rptw] = kNone;
    e.rf_src[r] = kNone;
    e.co_pos[w] = 0;
    e.co_pos[wdb] = 0;
    ASSERT_TRUE(elt::derive(e).well_formed);

    for (const auto& relax : applicable_relaxations(e.program)) {
        if (relax.kind != Relaxation::Kind::kDropRmw) {
            continue;
        }
        const Execution relaxed = apply_relaxation(e, relax);
        EXPECT_EQ(relaxed.program.num_events(), e.program.num_events());
        EXPECT_TRUE(relaxed.program.rmw_pairs().empty());
        EXPECT_TRUE(elt::derive(relaxed).well_formed);
    }
}

TEST(Relax, AllRelaxationsOfFixturesStayWellFormed)
{
    const std::vector<Execution> fixtures = {
        elt::fixtures::fig2b_sb_elt(),
        elt::fixtures::fig2c_sb_elt_aliased(),
        elt::fixtures::fig4_remap_chain(),
        elt::fixtures::fig6_remap_disambiguation(),
        elt::fixtures::fig10a_ptwalk2(),
        elt::fixtures::fig10b_dirtybit3(),
        elt::fixtures::fig11_new_elt(),
    };
    for (const Execution& e : fixtures) {
        for (const auto& relax : applicable_relaxations(e.program)) {
            const Execution relaxed = apply_relaxation(e, relax);
            if (relaxed.program.num_events() == 0) {
                continue;
            }
            const auto d = elt::derive(relaxed);
            EXPECT_TRUE(d.well_formed)
                << relax.describe(e.program) << ": "
                << (d.problems.empty() ? "" : d.problems[0]);
        }
    }
}

TEST(Relax, CascadeRemovesDanglingSpuriousInvlpg)
{
    // fig5b: R0, INVLPG1 (spurious), R2. Removing R2 leaves the INVLPG with
    // no later same-VA access; the cascade must delete it too.
    const Execution e = elt::fixtures::fig5b_invlpg_forces_walk();
    elt::EventId r2 = kNone;
    for (EventId id = 0; id < e.program.num_events(); ++id) {
        if (e.program.event(id).kind == EventKind::kRead &&
            e.program.position_of(id) == 2) {
            r2 = id;
        }
    }
    ASSERT_NE(r2, kNone);
    const Execution relaxed = remove_events(e, {r2});
    for (EventId id = 0; id < relaxed.program.num_events(); ++id) {
        EXPECT_NE(relaxed.program.event(id).kind, EventKind::kInvlpg);
    }
    EXPECT_TRUE(elt::derive(relaxed).well_formed);
}

TEST(Relax, DescribeMentionsTarget)
{
    const Execution e = elt::fixtures::fig10a_ptwalk2();
    const auto relaxations = applicable_relaxations(e.program);
    for (const auto& r : relaxations) {
        EXPECT_FALSE(r.describe(e.program).empty());
    }
}

}  // namespace
}  // namespace transform::mtm
