/// \file
/// Unit tests for the relaxation engine (section IV-B removal groups).
#include <gtest/gtest.h>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "mtm/model.h"
#include "mtm/relax.h"

namespace transform::mtm {
namespace {

using elt::EventId;
using elt::EventKind;
using elt::Execution;
using elt::kNone;

TEST(Relax, ApplicableRelaxationCounts)
{
    // ptwalk2: WPTE0, INVLPG1 (remap-invoked), R2, Rptw3.
    const Execution e = elt::fixtures::fig10a_ptwalk2();
    const auto relaxations = applicable_relaxations(e.program);
    // Removable: WPTE0 (with its INVLPG), R2 (with its walk). The
    // remap-invoked INVLPG and the ghost walk are not separately removable.
    EXPECT_EQ(relaxations.size(), 2u);
}

TEST(Relax, SpuriousInvlpgIsRemovableAlone)
{
    const Execution e = elt::fixtures::fig5b_invlpg_forces_walk();
    const auto relaxations = applicable_relaxations(e.program);
    // R0, INVLPG1 (spurious), R2 are each removable.
    EXPECT_EQ(relaxations.size(), 3u);
    bool has_spurious = false;
    for (const auto& r : relaxations) {
        has_spurious = has_spurious ||
                       r.kind == Relaxation::Kind::kRemoveSpuriousInvlpg;
    }
    EXPECT_TRUE(has_spurious);
}

TEST(Relax, RemoveWpteRemovesItsInvlpgs)
{
    const Execution e = elt::fixtures::fig11_new_elt();
    // Find the Wpte relaxation.
    for (const auto& r : applicable_relaxations(e.program)) {
        if (r.kind != Relaxation::Kind::kRemoveWpte) {
            continue;
        }
        const Execution relaxed = apply_relaxation(e, r);
        // WPTE0 + INVLPG1 + INVLPG2 gone: R3 and its walk remain.
        EXPECT_EQ(relaxed.program.num_events(), 2);
        EXPECT_TRUE(relaxed.program.validate().empty());
        const auto d = elt::derive(relaxed);
        EXPECT_TRUE(d.well_formed);
        EXPECT_TRUE(x86t_elt().permits(relaxed));
    }
}

TEST(Relax, RemoveUserEventRemovesGhosts)
{
    const Execution e = elt::fixtures::fig10a_ptwalk2();
    for (const auto& r : applicable_relaxations(e.program)) {
        if (r.kind != Relaxation::Kind::kRemoveUserEvent) {
            continue;
        }
        const Execution relaxed = apply_relaxation(e, r);
        // R2 and Rptw3 both go; WPTE0 + INVLPG1 remain.
        EXPECT_EQ(relaxed.program.num_events(), 2);
        EXPECT_TRUE(elt::derive(relaxed).well_formed);
    }
}

TEST(Relax, WalkReparentsToSurvivingUser)
{
    // Fig 5a: R0 (with walk) and R1 (hit). Removing R0 must keep the walk,
    // re-parented to R1.
    const Execution e = elt::fixtures::fig5a_shared_walk();
    const auto relaxations = applicable_relaxations(e.program);
    for (const auto& r : relaxations) {
        if (r.kind != Relaxation::Kind::kRemoveUserEvent || r.target != 0) {
            continue;
        }
        const Execution relaxed = apply_relaxation(e, r);
        EXPECT_EQ(relaxed.program.num_events(), 2);  // R1 + the walk
        int walks = 0;
        for (EventId id = 0; id < relaxed.program.num_events(); ++id) {
            if (relaxed.program.event(id).kind == EventKind::kRptw) {
                ++walks;
                EXPECT_NE(relaxed.program.event(id).parent, kNone);
            }
        }
        EXPECT_EQ(walks, 1);
        EXPECT_TRUE(elt::derive(relaxed).well_formed);
    }
}

TEST(Relax, ReadSourcedByRemovedWriteFallsBackToInit)
{
    const Execution e = elt::fixtures::fig2a_sb_mcm();
    // Remove W2 (the write R1 reads from).
    const Execution relaxed = remove_events(e, {2});
    EXPECT_EQ(relaxed.program.num_events(), 3);
    for (EventId id = 0; id < relaxed.program.num_events(); ++id) {
        if (relaxed.program.event(id).kind == EventKind::kRead &&
            relaxed.program.event(id).va == 1) {
            EXPECT_EQ(relaxed.rf_src[id], kNone);
        }
    }
    EXPECT_TRUE(elt::derive(relaxed, {false}).well_formed);
}

TEST(Relax, DropRmwKeepsEvents)
{
    elt::ProgramBuilder b;
    b.thread();
    const EventId r = b.R(0);
    const EventId rptw = b.rptw(r);
    const EventId w = b.W(0);
    const EventId wdb = b.wdb(w);
    b.rmw(r, w);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r] = rptw;
    e.ptw_src[w] = rptw;
    e.rf_src[rptw] = kNone;
    e.rf_src[r] = kNone;
    e.co_pos[w] = 0;
    e.co_pos[wdb] = 0;
    ASSERT_TRUE(elt::derive(e).well_formed);

    for (const auto& relax : applicable_relaxations(e.program)) {
        if (relax.kind != Relaxation::Kind::kDropRmw) {
            continue;
        }
        const Execution relaxed = apply_relaxation(e, relax);
        EXPECT_EQ(relaxed.program.num_events(), e.program.num_events());
        EXPECT_TRUE(relaxed.program.rmw_pairs().empty());
        EXPECT_TRUE(elt::derive(relaxed).well_formed);
    }
}

TEST(Relax, AllRelaxationsOfFixturesStayWellFormed)
{
    const std::vector<Execution> fixtures = {
        elt::fixtures::fig2b_sb_elt(),
        elt::fixtures::fig2c_sb_elt_aliased(),
        elt::fixtures::fig4_remap_chain(),
        elt::fixtures::fig6_remap_disambiguation(),
        elt::fixtures::fig10a_ptwalk2(),
        elt::fixtures::fig10b_dirtybit3(),
        elt::fixtures::fig11_new_elt(),
    };
    for (const Execution& e : fixtures) {
        for (const auto& relax : applicable_relaxations(e.program)) {
            const Execution relaxed = apply_relaxation(e, relax);
            if (relaxed.program.num_events() == 0) {
                continue;
            }
            const auto d = elt::derive(relaxed);
            EXPECT_TRUE(d.well_formed)
                << relax.describe(e.program) << ": "
                << (d.problems.empty() ? "" : d.problems[0]);
        }
    }
}

TEST(Relax, CascadeRemovesDanglingSpuriousInvlpg)
{
    // fig5b: R0, INVLPG1 (spurious), R2. Removing R2 leaves the INVLPG with
    // no later same-VA access; the cascade must delete it too.
    const Execution e = elt::fixtures::fig5b_invlpg_forces_walk();
    elt::EventId r2 = kNone;
    for (EventId id = 0; id < e.program.num_events(); ++id) {
        if (e.program.event(id).kind == EventKind::kRead &&
            e.program.position_of(id) == 2) {
            r2 = id;
        }
    }
    ASSERT_NE(r2, kNone);
    const Execution relaxed = remove_events(e, {r2});
    for (EventId id = 0; id < relaxed.program.num_events(); ++id) {
        EXPECT_NE(relaxed.program.event(id).kind, EventKind::kInvlpg);
    }
    EXPECT_TRUE(elt::derive(relaxed).well_formed);
}

TEST(Relax, DescribeMentionsTarget)
{
    const Execution e = elt::fixtures::fig10a_ptwalk2();
    const auto relaxations = applicable_relaxations(e.program);
    for (const auto& r : relaxations) {
        EXPECT_FALSE(r.describe(e.program).empty());
    }
}

// ---------------------------------------------------------------------------
// Differential battery: the pooled `_into` twins must be field-identical
// to the materializing originals on every input — one RelaxScratch reused
// across the whole sweep (the derive/derive_into discipline).

void
expect_execution_identical(const Execution& fresh, const Execution& pooled,
                           const std::string& context)
{
    ASSERT_EQ(fresh.program.num_events(), pooled.program.num_events())
        << context;
    ASSERT_EQ(fresh.program.num_threads(), pooled.program.num_threads())
        << context;
    for (EventId id = 0; id < fresh.program.num_events(); ++id) {
        const elt::Event& a = fresh.program.event(id);
        const elt::Event& b = pooled.program.event(id);
        EXPECT_EQ(a.kind, b.kind) << context << " event " << id;
        EXPECT_EQ(a.thread, b.thread) << context << " event " << id;
        EXPECT_EQ(a.va, b.va) << context << " event " << id;
        EXPECT_EQ(a.map_pa, b.map_pa) << context << " event " << id;
        EXPECT_EQ(a.parent, b.parent) << context << " event " << id;
        EXPECT_EQ(a.remap_src, b.remap_src) << context << " event " << id;
    }
    EXPECT_EQ(fresh.program.threads(), pooled.program.threads()) << context;
    EXPECT_EQ(fresh.program.rmw_pairs(), pooled.program.rmw_pairs())
        << context;
    EXPECT_EQ(fresh.rf_src, pooled.rf_src) << context;
    EXPECT_EQ(fresh.co_pos, pooled.co_pos) << context;
    EXPECT_EQ(fresh.ptw_src, pooled.ptw_src) << context;
    EXPECT_EQ(fresh.co_pa_pos, pooled.co_pa_pos) << context;
}

TEST(RelaxScratchDifferential, ApplyIntoFieldIdenticalAcrossFixtures)
{
    struct Case {
        Execution (*make)();
        bool vm;
        const char* name;
    };
    const Case cases[] = {
        {elt::fixtures::fig2a_sb_mcm, false, "fig2a"},
        {elt::fixtures::fig2b_sb_elt, true, "fig2b"},
        {elt::fixtures::fig2c_sb_elt_aliased, true, "fig2c"},
        {elt::fixtures::fig4_remap_chain, true, "fig4"},
        {elt::fixtures::fig5a_shared_walk, true, "fig5a"},
        {elt::fixtures::fig5b_invlpg_forces_walk, true, "fig5b"},
        {elt::fixtures::fig6_remap_disambiguation, true, "fig6"},
        {elt::fixtures::fig10a_ptwalk2, true, "fig10a"},
        {elt::fixtures::fig10b_dirtybit3, true, "fig10b"},
        {elt::fixtures::fig11_new_elt, true, "fig11"},
    };
    RelaxScratch scratch;  // ONE scratch across every fixture + relaxation
    for (const Case& c : cases) {
        const Execution e = c.make();
        std::vector<Relaxation> relaxations;
        applicable_relaxations_into(e.program, &relaxations);
        // The pooled enumeration matches the materializing one first.
        const auto fresh_relaxations = applicable_relaxations(e.program);
        ASSERT_EQ(relaxations.size(), fresh_relaxations.size()) << c.name;
        for (std::size_t i = 0; i < relaxations.size(); ++i) {
            EXPECT_EQ(relaxations[i].kind, fresh_relaxations[i].kind)
                << c.name << " relaxation " << i;
            EXPECT_EQ(relaxations[i].target, fresh_relaxations[i].target)
                << c.name << " relaxation " << i;
        }
        for (const Relaxation& r : relaxations) {
            const Execution fresh = apply_relaxation(e, r, c.vm);
            const Execution& pooled =
                apply_relaxation_into(e, r, c.vm, &scratch);
            expect_execution_identical(
                fresh, pooled,
                std::string(c.name) + ": " + r.describe(e.program));
        }
    }
}

TEST(RelaxScratchDifferential, IntoMatchesOnCorruptedWitnesses)
{
    // The judge only relaxes well-formed candidates, but the twins must
    // not diverge even on broken witnesses (the repair paths: rf fallback,
    // co re-compaction of nonsense positions).
    const Execution base = elt::fixtures::fig10b_dirtybit3();
    RelaxScratch scratch;
    std::vector<Execution> variants;
    variants.push_back(base);
    {
        Execution bad = base;
        bad.co_pos[0] = 7;  // out-of-range coherence position
        variants.push_back(bad);
    }
    {
        Execution self_rf = base;
        self_rf.rf_src[0] = 0;  // self-sourced rf
        variants.push_back(self_rf);
    }
    {
        Execution cross = base;
        for (EventId id = 0; id < cross.program.num_events(); ++id) {
            if (cross.rf_src[id] != elt::kNone) {
                cross.rf_src[id] = (cross.rf_src[id] + 1) %
                                   cross.program.num_events();
            }
        }
        variants.push_back(cross);
    }
    for (std::size_t v = 0; v < variants.size(); ++v) {
        const Execution& e = variants[v];
        for (const Relaxation& r : applicable_relaxations(e.program)) {
            const Execution fresh = apply_relaxation(e, r);
            const Execution& pooled =
                apply_relaxation_into(e, r, /*vm_enabled=*/true, &scratch);
            expect_execution_identical(fresh, pooled,
                                       "variant " + std::to_string(v) +
                                           ": " + r.describe(e.program));
        }
    }
}

TEST(RelaxScratchDifferential, RemoveEventsIntoMatchesAcrossSeedSets)
{
    const Execution e = elt::fixtures::fig11_new_elt();
    RelaxScratch scratch;
    for (EventId seed = 0; seed < e.program.num_events(); ++seed) {
        if (elt::is_ghost(e.program.event(seed).kind)) {
            continue;  // ghosts are not removable seeds
        }
        const Execution fresh = remove_events(e, {seed});
        const Execution& pooled =
            remove_events_into(e, {seed}, /*vm_enabled=*/true, &scratch);
        expect_execution_identical(fresh, pooled,
                                   "seed " + std::to_string(seed));
    }
}

}  // namespace
}  // namespace transform::mtm
