/// \file
/// Fine-grained semantics of the Table-I vocabulary: each relation's
/// domain/range typing and the exact edge sets the paper's figures imply.
#include <gtest/gtest.h>

#include <algorithm>

#include "elt/derive.h"
#include "elt/fixtures.h"

namespace transform::elt {
namespace {

bool
has_edge(const EdgeSet& edges, EventId from, EventId to)
{
    return std::find(edges.begin(), edges.end(), Edge{from, to}) != edges.end();
}

class VocabularyFig4 : public ::testing::Test {
  protected:
    void SetUp() override
    {
        exec_ = fixtures::fig4_remap_chain();
        derived_ = derive(exec_);
        ASSERT_TRUE(derived_.well_formed);
        const Program& p = exec_.program;
        for (EventId id = 0; id < p.num_events(); ++id) {
            switch (p.event(id).kind) {
            case EventKind::kRead:
                reads_.push_back(id);
                break;
            case EventKind::kWpte:
                wptes_.push_back(id);
                break;
            case EventKind::kRptw:
                walks_.push_back(id);
                break;
            default:
                break;
            }
        }
        ASSERT_EQ(reads_.size(), 4u);   // R0 x, R1 y, R4 y, R7 x
        ASSERT_EQ(wptes_.size(), 2u);   // WPTE2 (y->c), WPTE5 (x->c)
        ASSERT_EQ(walks_.size(), 4u);
    }

    Execution exec_;
    DerivedRelations derived_;
    std::vector<EventId> reads_;
    std::vector<EventId> wptes_;
    std::vector<EventId> walks_;
};

TEST_F(VocabularyFig4, RfPaRelatesWpteToUsers)
{
    // R4 y uses WPTE2's mapping; R7 x uses WPTE5's (Fig. 4b).
    EXPECT_TRUE(has_edge(derived_.rf_pa, wptes_[0], reads_[2]));
    EXPECT_TRUE(has_edge(derived_.rf_pa, wptes_[1], reads_[3]));
    EXPECT_EQ(derived_.rf_pa.size(), 2u);
    // Domain: Wpte only; range: user-facing data accesses only.
    for (const auto& [from, to] : derived_.rf_pa) {
        EXPECT_EQ(exec_.program.event(from).kind, EventKind::kWpte);
        EXPECT_TRUE(is_data_access(exec_.program.event(to).kind));
    }
}

TEST_F(VocabularyFig4, CoPaOrdersAliasCreation)
{
    // Both Wptes target PA c; creation order WPTE2 then WPTE5.
    ASSERT_EQ(derived_.co_pa.size(), 1u);
    EXPECT_TRUE(has_edge(derived_.co_pa, wptes_[0], wptes_[1]));
}

TEST_F(VocabularyFig4, FrPaRelatesToLaterAliases)
{
    // R4 reads PA c via WPTE2; WPTE5 creates the next alias of c.
    ASSERT_EQ(derived_.fr_pa.size(), 1u);
    EXPECT_TRUE(has_edge(derived_.fr_pa, reads_[2], wptes_[1]));
}

TEST_F(VocabularyFig4, FrVaRelatesToRemapsOfAccessedVa)
{
    // R0 x read before WPTE5 remapped x; R1 y before WPTE2 remapped y.
    EXPECT_EQ(derived_.fr_va.size(), 2u);
    EXPECT_TRUE(has_edge(derived_.fr_va, reads_[0], wptes_[1]));
    EXPECT_TRUE(has_edge(derived_.fr_va, reads_[1], wptes_[0]));
    // fr_va targets are always PTE writes for the accessed VA.
    for (const auto& [from, to] : derived_.fr_va) {
        EXPECT_EQ(exec_.program.event(to).kind, EventKind::kWpte);
        EXPECT_EQ(exec_.program.event(from).va, exec_.program.event(to).va);
    }
}

TEST_F(VocabularyFig4, RemapRelatesWpteToItsInvlpgs)
{
    EXPECT_EQ(derived_.remap.size(), 2u);
    for (const auto& [from, to] : derived_.remap) {
        EXPECT_EQ(exec_.program.event(from).kind, EventKind::kWpte);
        EXPECT_EQ(exec_.program.event(to).kind, EventKind::kInvlpg);
        EXPECT_EQ(exec_.program.event(to).remap_src, from);
    }
}

TEST_F(VocabularyFig4, RfPtwSourcesEachAccess)
{
    // Four data accesses, each translated by its own walk.
    EXPECT_EQ(derived_.rf_ptw.size(), 4u);
    for (const auto& [from, to] : derived_.rf_ptw) {
        EXPECT_EQ(exec_.program.event(from).kind, EventKind::kRptw);
        EXPECT_TRUE(is_data_access(exec_.program.event(to).kind));
        EXPECT_EQ(exec_.program.event(from).va, exec_.program.event(to).va);
    }
}

TEST(Vocabulary, GhostRelatesParentToGhost)
{
    const Execution e = fixtures::fig2b_sb_elt();
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed);
    for (const auto& [parent, ghost] : d.ghost) {
        EXPECT_FALSE(is_ghost(e.program.event(parent).kind));
        EXPECT_TRUE(is_ghost(e.program.event(ghost).kind));
        EXPECT_EQ(e.program.event(ghost).parent, parent);
        EXPECT_EQ(e.program.event(parent).thread,
                  e.program.event(ghost).thread);
    }
    // Each Write has two ghosts (Wdb + Rptw), each Read at most one.
    EXPECT_EQ(d.ghost.size(), 6u);
}

TEST(Vocabulary, PtwSourceExcludesTheWalker)
{
    const Execution e = fixtures::fig5a_shared_walk();
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed);
    ASSERT_EQ(d.ptw_source.size(), 1u);
    const auto [from, to] = d.ptw_source[0];
    // R0 (the walker) sources R1 (the hit), never itself.
    EXPECT_NE(from, to);
    EXPECT_EQ(e.program.position_of(from), 0);
    EXPECT_EQ(e.program.position_of(to), 1);
}

TEST(Vocabulary, RfeIsCrossThreadSubsetOfRf)
{
    const Execution e = fixtures::fig2b_sb_elt();
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed);
    for (const auto& edge : d.rfe) {
        EXPECT_NE(e.program.event(edge.first).thread,
                  e.program.event(edge.second).thread);
        EXPECT_TRUE(std::find(d.rf.begin(), d.rf.end(), edge) != d.rf.end());
    }
}

TEST(Vocabulary, PoIsTransitivePerThread)
{
    const Execution e = fixtures::fig4_remap_chain();
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed);
    // 8 non-ghost events on one thread: C(8,2) = 28 po pairs.
    EXPECT_EQ(d.po.size(), 28u);
}

TEST(Vocabulary, FenceOrdersAcrossMfence)
{
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(0);
    b.wdb(w);
    const EventId walk_w = b.rptw(w);
    b.mfence();
    const EventId r = b.R(1);
    const EventId walk_r = b.rptw(r);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[w] = walk_w;
    e.ptw_src[r] = walk_r;
    e.rf_src[walk_w] = kNone;
    e.rf_src[walk_r] = kNone;
    e.rf_src[r] = kNone;
    e.co_pos[w] = 0;
    e.co_pos[e.program.wdb_of(w)] = 0;
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed);
    // Memory events before the fence: W, Wdb, Rptw(w); after: R, Rptw(r).
    // fence = 3 x 2 pairs.
    EXPECT_EQ(d.fence.size(), 6u);
    // And the fence restores the W->R order that ppo drops.
    EXPECT_FALSE(has_edge(d.ppo, w, r));
    EXPECT_TRUE(has_edge(d.fence, w, r));
}

TEST(Vocabulary, PpoKeepsAllButWriteToRead)
{
    const Execution e = fixtures::fig2a_sb_mcm();
    const DerivedRelations d = derive(e, {false});
    ASSERT_TRUE(d.well_formed);
    // Each thread is W;R — the only same-thread memory pair is W->R,
    // dropped by TSO.
    EXPECT_TRUE(d.ppo.empty());
}

TEST(Vocabulary, InitialMappingsAreIdentity)
{
    // A read with no remap resolves VA i to PA i.
    for (VaId va = 0; va < 3; ++va) {
        ProgramBuilder b;
        b.thread();
        const EventId r = b.R(va);
        const EventId walk = b.rptw(r);
        Execution e = Execution::empty_for(b.build());
        e.ptw_src[r] = walk;
        e.rf_src[walk] = kNone;
        const DerivedRelations d = derive(e);
        ASSERT_TRUE(d.well_formed);
        EXPECT_EQ(d.resolved_pa[r], va);
        EXPECT_EQ(d.provenance[r], kNone);
    }
}

TEST(Vocabulary, WpteProvenanceIsItself)
{
    const Execution e = fixtures::fig10a_ptwalk2();
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed);
    EXPECT_EQ(d.resolved_pa[0], 1);  // WPTE0 installs x -> b
    EXPECT_EQ(d.provenance[0], 0);
}

TEST(Vocabulary, InstructionCountCountsGhosts)
{
    // ptwalk2: WPTE + INVLPG + R + Rptw = 4 (the paper's smallest ELT).
    EXPECT_EQ(fixtures::fig10a_ptwalk2().program.instruction_count(), 4);
    // sb ELT (Fig. 2b): 4 user + 2 Wdb + 4 Rptw = 10.
    EXPECT_EQ(fixtures::fig2b_sb_elt().program.instruction_count(), 10);
}

}  // namespace
}  // namespace transform::elt
