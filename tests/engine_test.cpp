/// \file
/// Tests for the synthesis engine: per-axiom suites at small bounds.
#include <gtest/gtest.h>

#include <set>

#include "elt/fixtures.h"
#include "synth/canonical.h"
#include "synth/engine.h"
#include "synth/minimality.h"

namespace transform::synth {
namespace {

SynthesisOptions
small_options(int min_bound, int bound)
{
    SynthesisOptions opt;
    opt.min_bound = min_bound;
    opt.bound = bound;
    opt.max_threads = 2;
    opt.max_vas = 2;
    opt.max_fresh_pas = 1;
    return opt;
}

TEST(Engine, InvlpgSuiteAtBound4ContainsPtwalk2)
{
    const mtm::Model model = mtm::x86t_elt();
    const SuiteResult suite =
        synthesize_suite(model, "invlpg", small_options(4, 4));
    EXPECT_TRUE(suite.complete);
    ASSERT_FALSE(suite.tests.empty());
    const std::string ptwalk2_key =
        canonical_key(elt::fixtures::fig10a_ptwalk2().program);
    bool found = false;
    for (const SynthesizedTest& t : suite.tests) {
        found = found || t.canonical_key == ptwalk2_key;
    }
    EXPECT_TRUE(found) << "ptwalk2 must be synthesized at bound 4";
}

TEST(Engine, ScPerLocSuiteAtBound4NonEmpty)
{
    const mtm::Model model = mtm::x86t_elt();
    const SuiteResult suite =
        synthesize_suite(model, "sc_per_loc", small_options(4, 4));
    EXPECT_GT(suite.tests.size(), 0u);
}

TEST(Engine, AllSynthesizedTestsAreMinimalAndUnique)
{
    const mtm::Model model = mtm::x86t_elt();
    const SuiteResult suite =
        synthesize_suite(model, "sc_per_loc", small_options(4, 5));
    std::set<std::string> keys;
    for (const SynthesizedTest& t : suite.tests) {
        EXPECT_TRUE(keys.insert(t.canonical_key).second)
            << "duplicate canonical key in suite";
        const MinimalityVerdict verdict = judge(model, t.witness);
        EXPECT_TRUE(verdict.interesting);
        EXPECT_TRUE(verdict.minimal);
        // The witness really violates the target axiom.
        bool violates_target = false;
        for (const std::string& axiom : t.violated) {
            violates_target = violates_target || axiom == "sc_per_loc";
        }
        EXPECT_TRUE(violates_target);
    }
}

TEST(Engine, TlbCausalitySuiteAtSmallBound)
{
    const mtm::Model model = mtm::x86t_elt();
    const SuiteResult suite =
        synthesize_suite(model, "tlb_causality", small_options(4, 5));
    EXPECT_GT(suite.tests.size(), 0u);
    for (const SynthesizedTest& t : suite.tests) {
        bool violates_target = false;
        for (const std::string& axiom : t.violated) {
            violates_target = violates_target || axiom == "tlb_causality";
        }
        EXPECT_TRUE(violates_target);
    }
}

TEST(Engine, RmwAtomicitySuiteNeedsMoreInstructions)
{
    const mtm::Model model = mtm::x86t_elt();
    // At bound 4 no rmw_atomicity test fits (rmw pair + extra write needs
    // at least 6 events).
    const SuiteResult small =
        synthesize_suite(model, "rmw_atomicity", small_options(4, 4));
    EXPECT_TRUE(small.tests.empty());
}

TEST(Engine, SuitesAreCumulativeAcrossBounds)
{
    const mtm::Model model = mtm::x86t_elt();
    const SuiteResult at4 =
        synthesize_suite(model, "invlpg", small_options(4, 4));
    const SuiteResult at5 =
        synthesize_suite(model, "invlpg", small_options(4, 5));
    EXPECT_GE(at5.tests.size(), at4.tests.size());
    // Every bound-4 test is still present at bound 5.
    std::set<std::string> keys5;
    for (const SynthesizedTest& t : at5.tests) {
        keys5.insert(t.canonical_key);
    }
    for (const SynthesizedTest& t : at4.tests) {
        EXPECT_TRUE(keys5.count(t.canonical_key) > 0);
    }
}

TEST(Engine, TimeBudgetMarksIncomplete)
{
    const mtm::Model model = mtm::x86t_elt();
    SynthesisOptions opt = small_options(4, 8);
    opt.time_budget_seconds = 1e-6;
    const SuiteResult suite = synthesize_suite(model, "sc_per_loc", opt);
    EXPECT_FALSE(suite.complete);
}

TEST(Engine, McmBaselineSynthesizesTsoTests)
{
    // MCM-only synthesis (prior-work baseline): sc_per_loc tests exist at
    // tiny bounds (e.g. W x; R x reading stale).
    const mtm::Model tso = mtm::x86tso();
    const SuiteResult suite =
        synthesize_suite(tso, "sc_per_loc", small_options(2, 3));
    EXPECT_GT(suite.tests.size(), 0u);
    for (const SynthesizedTest& t : suite.tests) {
        for (int id = 0; id < t.witness.program.num_events(); ++id) {
            EXPECT_FALSE(elt::is_ghost(t.witness.program.event(id).kind));
        }
    }
}

TEST(Engine, ParallelDriverMatchesSerial)
{
    const mtm::Model model = mtm::x86t_elt();
    SynthesisOptions opt = small_options(4, 5);
    const auto serial = synthesize_all(model, opt);
    const auto parallel = synthesize_all_parallel(model, opt);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].axiom, parallel[i].axiom);
        ASSERT_EQ(serial[i].tests.size(), parallel[i].tests.size())
            << serial[i].axiom;
        std::set<std::string> serial_keys;
        std::set<std::string> parallel_keys;
        for (const auto& t : serial[i].tests) {
            serial_keys.insert(t.canonical_key);
        }
        for (const auto& t : parallel[i].tests) {
            parallel_keys.insert(t.canonical_key);
        }
        EXPECT_EQ(serial_keys, parallel_keys) << serial[i].axiom;
    }
    EXPECT_EQ(unique_test_count(serial), unique_test_count(parallel));
}

TEST(Engine, ThreeCoreSynthesisFindsCrossCoreInvlpgTests)
{
    // With three cores a WPTE must invoke three INVLPGs; the smallest
    // three-core invlpg test is WPTE + 3 INVLPG + R + Rptw = 6 events.
    const mtm::Model model = mtm::x86t_elt();
    SynthesisOptions opt = small_options(4, 6);
    opt.max_threads = 3;
    const auto suite = synthesize_suite(model, "invlpg", opt);
    bool found_three_core = false;
    for (const auto& test : suite.tests) {
        found_three_core =
            found_three_core || test.witness.program.num_threads() == 3;
    }
    EXPECT_TRUE(found_three_core);
}

TEST(Engine, UniqueTestCountDedupsAcrossSuites)
{
    const mtm::Model model = mtm::x86t_elt();
    std::vector<SuiteResult> suites;
    suites.push_back(synthesize_suite(model, "sc_per_loc", small_options(4, 4)));
    suites.push_back(synthesize_suite(model, "invlpg", small_options(4, 4)));
    const int unique = unique_test_count(suites);
    EXPECT_GT(unique, 0);
    EXPECT_LE(unique, static_cast<int>(suites[0].tests.size() +
                                       suites[1].tests.size()));
}

}  // namespace
}  // namespace transform::synth
