/// \file
/// Failure-injection sweeps: systematically corrupt every witness field of
/// every fixture and assert the derivation engine never crashes, never
/// accepts an inconsistent witness as "well-formed unless it truly is", and
/// that well-formed mutants always produce a judgeable verdict.
#include <gtest/gtest.h>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "mtm/model.h"

namespace transform {
namespace {

using elt::EventId;
using elt::Execution;

struct MutationCase {
    const char* name;
    Execution (*make)();
    bool vm;
};

const MutationCase kCases[] = {
    {"fig2b", elt::fixtures::fig2b_sb_elt, true},
    {"fig2c", elt::fixtures::fig2c_sb_elt_aliased, true},
    {"fig4", elt::fixtures::fig4_remap_chain, true},
    {"fig6", elt::fixtures::fig6_remap_disambiguation, true},
    {"fig10a", elt::fixtures::fig10a_ptwalk2, true},
    {"fig10b", elt::fixtures::fig10b_dirtybit3, true},
    {"fig2a", elt::fixtures::fig2a_sb_mcm, false},
};

class WitnessMutation : public ::testing::TestWithParam<MutationCase> {};

/// Derive the mutant; when it is well-formed the model must judge it
/// without issue. Returns the number of well-formed mutants seen.
int
probe(const Execution& mutant, bool vm)
{
    const auto d = elt::derive(mutant, {vm});
    if (!d.well_formed) {
        return 0;
    }
    const mtm::Model model = vm ? mtm::x86t_elt() : mtm::x86tso();
    (void)model.violated_axioms(mutant.program, d);
    return 1;
}

TEST_P(WitnessMutation, RfFieldSweep)
{
    const auto& param = GetParam();
    const Execution original = param.make();
    const int n = original.program.num_events();
    int well_formed = 0;
    for (EventId r = 0; r < n; ++r) {
        for (EventId src = -1; src < n; ++src) {
            Execution mutant = original;
            mutant.rf_src[r] = src;
            well_formed += probe(mutant, param.vm);
        }
    }
    EXPECT_GT(well_formed, 0);  // the identity mutation is always included
}

TEST_P(WitnessMutation, PtwFieldSweep)
{
    const auto& param = GetParam();
    const Execution original = param.make();
    const int n = original.program.num_events();
    for (EventId e = 0; e < n; ++e) {
        for (EventId walk = -1; walk < n; ++walk) {
            Execution mutant = original;
            mutant.ptw_src[e] = walk;
            probe(mutant, param.vm);  // must not crash
        }
    }
    SUCCEED();
}

TEST_P(WitnessMutation, CoPositionSweep)
{
    const auto& param = GetParam();
    const Execution original = param.make();
    const int n = original.program.num_events();
    for (EventId w = 0; w < n; ++w) {
        for (int pos = -1; pos <= n; ++pos) {
            Execution mutant = original;
            mutant.co_pos[w] = pos;
            probe(mutant, param.vm);
        }
    }
    SUCCEED();
}

TEST_P(WitnessMutation, CoPaPositionSweep)
{
    const auto& param = GetParam();
    const Execution original = param.make();
    const int n = original.program.num_events();
    for (EventId w = 0; w < n; ++w) {
        for (int pos = -1; pos <= n; ++pos) {
            Execution mutant = original;
            mutant.co_pa_pos[w] = pos;
            probe(mutant, param.vm);
        }
    }
    SUCCEED();
}

TEST_P(WitnessMutation, SelfReferencesRejected)
{
    const auto& param = GetParam();
    const Execution original = param.make();
    const int n = original.program.num_events();
    for (EventId r = 0; r < n; ++r) {
        if (!elt::is_read_like(original.program.event(r).kind)) {
            continue;
        }
        Execution mutant = original;
        mutant.rf_src[r] = r;  // an event cannot source itself
        EXPECT_FALSE(elt::derive(mutant, {param.vm}).well_formed);
    }
}

INSTANTIATE_TEST_SUITE_P(Fixtures, WitnessMutation,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) {
                             return std::string(info.param.name);
                         });

}  // namespace
}  // namespace transform
