/// \file
/// Unit tests for the SAT/relational execution-space backend.
#include <gtest/gtest.h>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "mtm/encoding.h"

namespace transform::mtm {
namespace {

using elt::Execution;
using elt::Program;

TEST(Encoding, PtwalkProgramHasInvlpgViolation)
{
    const Model model = x86t_elt();
    ProgramEncoding enc(elt::fixtures::fig10a_ptwalk2().program, &model);
    EXPECT_TRUE(enc.exists_violating("invlpg"));
    EXPECT_TRUE(enc.exists_violating("sc_per_loc"));
    EXPECT_FALSE(enc.exists_violating("rmw_atomicity"));
    EXPECT_TRUE(enc.exists_permitted());
    EXPECT_TRUE(enc.exists_execution());
}

TEST(Encoding, ViolatingWitnessIsActuallyViolating)
{
    const Model model = x86t_elt();
    ProgramEncoding enc(elt::fixtures::fig10a_ptwalk2().program, &model);
    const auto witness = enc.find_violating("invlpg");
    ASSERT_TRUE(witness.has_value());
    const auto d = elt::derive(*witness);
    ASSERT_TRUE(d.well_formed) << (d.problems.empty() ? "" : d.problems[0]);
    const auto violated = model.violated_axioms(witness->program, d);
    EXPECT_NE(std::find(violated.begin(), violated.end(), "invlpg"),
              violated.end());
}

TEST(Encoding, Fig11ProgramViolations)
{
    const Model model = x86t_elt();
    ProgramEncoding enc(elt::fixtures::fig11_new_elt().program, &model);
    EXPECT_TRUE(enc.exists_violating("invlpg"));
    EXPECT_TRUE(enc.exists_permitted());
}

TEST(Encoding, McmSbProgram)
{
    const Model tso = x86tso();
    ProgramEncoding enc(elt::fixtures::fig2a_sb_mcm().program, &tso);
    // sb without fences: every outcome is permitted under TSO, and the
    // stale-read outcome still violates nothing but... sc_per_loc needs a
    // same-location pattern, causality needs fences: no violation possible.
    EXPECT_TRUE(enc.exists_permitted());
    EXPECT_FALSE(enc.exists_violating("causality"));
}

TEST(Encoding, EnumerateMatchesExistence)
{
    const Model model = x86t_elt();
    ProgramEncoding enc(elt::fixtures::fig10a_ptwalk2().program, &model);
    const auto all = enc.enumerate();
    EXPECT_GT(all.size(), 0u);
    const auto violating = enc.enumerate("invlpg");
    EXPECT_GT(violating.size(), 0u);
    EXPECT_LT(violating.size(), all.size());
    for (const Execution& e : violating) {
        const auto d = elt::derive(e);
        ASSERT_TRUE(d.well_formed);
        const auto violated = model.violated_axioms(e.program, d);
        EXPECT_NE(std::find(violated.begin(), violated.end(), "invlpg"),
                  violated.end());
    }
}

TEST(Encoding, EnumerationBoundRespected)
{
    const Model model = x86t_elt();
    ProgramEncoding enc(elt::fixtures::fig10b_dirtybit3().program, &model);
    const auto some = enc.enumerate("", /*max_executions=*/2);
    EXPECT_EQ(some.size(), 2u);
}

TEST(Encoding, StatsPopulated)
{
    const Model model = x86t_elt();
    ProgramEncoding enc(elt::fixtures::fig10a_ptwalk2().program, &model);
    enc.exists_execution();
    EXPECT_GT(enc.stats().variables, 0);
    EXPECT_GT(enc.stats().circuit_nodes, 0);
}

}  // namespace
}  // namespace transform::mtm
