/// \file
/// Cross-checks on the reconstructed hand-written suite: for a sample of
/// its programs, the SAT/relational backend and the explicit evaluator must
/// agree axiom-by-axiom on whether a violating execution exists, and the
/// comparison tool's category assignments must be reproducible from
/// first principles.
#include <gtest/gtest.h>

#include <algorithm>

#include "compare/compare.h"
#include "elt/derive.h"
#include "mtm/encoding.h"
#include "mtm/model.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"

namespace transform {
namespace {

using compare::HandwrittenElt;

/// Programs small enough for exhaustive SAT enumeration in a unit test.
std::vector<HandwrittenElt>
small_suite_sample()
{
    std::vector<HandwrittenElt> out;
    for (const HandwrittenElt& test : compare::coatcheck_suite()) {
        if (!test.uses_unsupported_ipi &&
            test.execution.program.num_events() <= 7) {
            out.push_back(test);
        }
    }
    return out;
}

TEST(SuiteCrossCheck, BackendsAgreePerAxiom)
{
    const mtm::Model model = mtm::x86t_elt();
    int checked = 0;
    for (const HandwrittenElt& test : small_suite_sample()) {
        mtm::ProgramEncoding encoding(test.execution.program, &model);
        for (const auto& axiom : model.axioms()) {
            bool explicit_violation = false;
            synth::for_each_execution(
                test.execution.program, true, [&](const elt::Execution& e) {
                    const auto violated = model.violated_axioms(e);
                    explicit_violation =
                        std::find(violated.begin(), violated.end(),
                                  axiom.name) != violated.end();
                    return !explicit_violation;
                });
            EXPECT_EQ(explicit_violation, encoding.exists_violating(axiom.name))
                << test.name << " / " << axiom.name;
        }
        ++checked;
    }
    EXPECT_GE(checked, 8);
}

TEST(SuiteCrossCheck, FixtureWitnessVerdictMatchesEnumeratedSpace)
{
    // The witness outcome stored with each hand-written test must appear in
    // the enumerated execution space of its program.
    const mtm::Model model = mtm::x86t_elt();
    for (const HandwrittenElt& test : small_suite_sample()) {
        const auto witness_verdict = model.violated_axioms(test.execution);
        bool found_matching = false;
        synth::for_each_execution(
            test.execution.program, true, [&](const elt::Execution& e) {
                found_matching = model.violated_axioms(e) == witness_verdict;
                return !found_matching;
            });
        EXPECT_TRUE(found_matching) << test.name;
    }
}

TEST(SuiteCrossCheck, VerbatimCategoryImpliesMinimalWitnessExists)
{
    const mtm::Model model = mtm::x86t_elt();
    for (const HandwrittenElt& test : small_suite_sample()) {
        const auto comparison = compare::classify(model, test);
        bool any_minimal = false;
        synth::for_each_execution(
            test.execution.program, true, [&](const elt::Execution& e) {
                const auto verdict = synth::judge(model, e);
                any_minimal = verdict.interesting && verdict.minimal;
                return !any_minimal;
            });
        EXPECT_EQ(comparison.category == compare::Category::kVerbatim,
                  any_minimal)
            << test.name;
    }
}

TEST(SuiteCrossCheck, NotSpanningTestsHaveNoForbiddenReduction)
{
    // Spot-check one known not-spanning test end to end: the lone store
    // admits no forbidden execution at all.
    const mtm::Model model = mtm::x86t_elt();
    for (const HandwrittenElt& test : compare::coatcheck_suite()) {
        if (test.name != "sanity-w1") {
            continue;
        }
        synth::for_each_execution(
            test.execution.program, true, [&](const elt::Execution& e) {
                EXPECT_TRUE(model.violated_axioms(e).empty());
                return true;
            });
    }
}

}  // namespace
}  // namespace transform
