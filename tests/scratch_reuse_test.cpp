/// \file
/// Differential tests for the zero-allocation witness pipeline: the
/// scratch-reusing fast paths must be observably identical to the
/// allocating originals they replaced.
///  - derive_into + a reused DeriveScratch is field-identical to a fresh
///    derive() across generated programs, their executions, and
///    systematically corrupted (ill-formed) witnesses;
///  - the streaming ProgramEncoding::enumerate visits exactly the sequence
///    the materializing wrapper returns (order and count) for every
///    x86t_elt axiom, and early-stop visits exactly a prefix;
///  - a reset Solver / reused EncodingScratch behaves like a fresh one;
///  - canonical_key and judge agree between their scratch and scratch-free
///    overloads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "mtm/encoding.h"
#include "mtm/model.h"
#include "synth/canonical.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"
#include "synth/skeleton.h"

namespace transform {
namespace {

using elt::DerivedRelations;
using elt::Execution;

void
expect_identical(const DerivedRelations& fresh, const DerivedRelations& reused,
                 const std::string& context)
{
    EXPECT_EQ(fresh.well_formed, reused.well_formed) << context;
    EXPECT_EQ(fresh.problems, reused.problems) << context;
    EXPECT_EQ(fresh.resolved_pa, reused.resolved_pa) << context;
    EXPECT_EQ(fresh.provenance, reused.provenance) << context;
    EXPECT_EQ(fresh.po, reused.po) << context;
    EXPECT_EQ(fresh.po_loc, reused.po_loc) << context;
    EXPECT_EQ(fresh.rf, reused.rf) << context;
    EXPECT_EQ(fresh.co, reused.co) << context;
    EXPECT_EQ(fresh.fr, reused.fr) << context;
    EXPECT_EQ(fresh.rfe, reused.rfe) << context;
    EXPECT_EQ(fresh.ppo, reused.ppo) << context;
    EXPECT_EQ(fresh.fence, reused.fence) << context;
    EXPECT_EQ(fresh.rmw, reused.rmw) << context;
    EXPECT_EQ(fresh.ghost, reused.ghost) << context;
    EXPECT_EQ(fresh.rf_ptw, reused.rf_ptw) << context;
    EXPECT_EQ(fresh.rf_pa, reused.rf_pa) << context;
    EXPECT_EQ(fresh.co_pa, reused.co_pa) << context;
    EXPECT_EQ(fresh.fr_pa, reused.fr_pa) << context;
    EXPECT_EQ(fresh.fr_va, reused.fr_va) << context;
    EXPECT_EQ(fresh.remap, reused.remap) << context;
    EXPECT_EQ(fresh.ptw_source, reused.ptw_source) << context;
}

/// Sweeps generated programs and their executions, deriving each through
/// ONE DerivedRelations + DeriveScratch reused across the whole sweep, and
/// comparing against a fresh derive() every time. Also derives corrupted
/// variants so the ill-formed paths (problems, early returns) go through
/// the same comparison.
void
sweep_and_compare(bool vm_enabled, int num_events)
{
    synth::SkeletonOptions opt;
    opt.num_events = num_events;
    opt.max_threads = 2;
    opt.max_vas = 2;
    opt.vm_enabled = vm_enabled;
    const elt::DeriveOptions derive_options{vm_enabled};
    DerivedRelations reused;
    elt::DeriveScratch scratch;
    int programs = 0;
    int executions = 0;
    synth::for_each_skeleton(opt, [&](const elt::Program& p) {
        int per_program = 0;
        synth::for_each_execution(p, vm_enabled, [&](const Execution& e) {
            const std::string context =
                "program " + std::to_string(programs) + " execution " +
                std::to_string(executions) + (vm_enabled ? " (vm)" : " (mcm)");
            elt::derive_into(e, derive_options, &reused, &scratch);
            expect_identical(elt::derive(e, derive_options), reused, context);

            // Corruptions: witness fields that break the placement rules.
            Execution bad = e;
            if (!bad.co_pos.empty()) {
                bad.co_pos[0] = 7;  // co position on a non-write / bad perm
                elt::derive_into(bad, derive_options, &reused, &scratch);
                expect_identical(elt::derive(bad, derive_options), reused,
                                 context + " corrupted co_pos");
            }
            Execution self_rf = e;
            self_rf.rf_src[0] = 0;  // self-sourced rf is always rejected
            elt::derive_into(self_rf, derive_options, &reused, &scratch);
            expect_identical(elt::derive(self_rf, derive_options), reused,
                             context + " self rf");
            ++executions;
            return executions % 7 != 0;  // rotate through executions
        });
        (void)per_program;
        ++programs;
        return programs < 60;
    });
    EXPECT_GT(programs, 0);
    EXPECT_GT(executions, 0);
}

TEST(DeriveScratchDifferential, VmSweepFieldIdentical)
{
    sweep_and_compare(/*vm_enabled=*/true, 4);
    sweep_and_compare(/*vm_enabled=*/true, 5);
}

TEST(DeriveScratchDifferential, McmSweepFieldIdentical)
{
    sweep_and_compare(/*vm_enabled=*/false, 3);
    sweep_and_compare(/*vm_enabled=*/false, 4);
}

TEST(DeriveScratchDifferential, FixturesFieldIdentical)
{
    DerivedRelations reused;
    elt::DeriveScratch scratch;
    struct Case {
        Execution (*make)();
        bool vm;
    };
    const Case cases[] = {
        {elt::fixtures::fig2a_sb_mcm, false},
        {elt::fixtures::fig2c_sb_elt_aliased, true},
        {elt::fixtures::fig4_remap_chain, true},
        {elt::fixtures::fig10b_dirtybit3, true},
        {elt::fixtures::fig11_new_elt, true},
    };
    for (const Case& c : cases) {
        const Execution e = c.make();
        elt::derive_into(e, {c.vm}, &reused, &scratch);
        expect_identical(elt::derive(e, {c.vm}), reused, "fixture");
    }
}

bool
same_witnesses(const Execution& a, const Execution& b)
{
    return a.rf_src == b.rf_src && a.co_pos == b.co_pos &&
           a.ptw_src == b.ptw_src && a.co_pa_pos == b.co_pa_pos;
}

TEST(StreamingEnumerate, VisitsExactlyTheMaterializedSequencePerAxiom)
{
    const mtm::Model model = mtm::x86t_elt();
    const elt::Program program = elt::fixtures::fig10b_dirtybit3().program;
    mtm::EncodingScratch scratch;
    for (const std::string& axiom : mtm::x86t_elt_axiom_names()) {
        mtm::ProgramEncoding materializing(program, &model);
        const std::vector<Execution> expected = materializing.enumerate(axiom);

        mtm::ProgramEncoding streaming(program, &model, &scratch);
        std::size_t visited = 0;
        const bool completed =
            streaming.enumerate(axiom, [&](const Execution& e) {
                EXPECT_LT(visited, expected.size()) << axiom;
                if (visited < expected.size()) {
                    EXPECT_TRUE(same_witnesses(expected[visited], e))
                        << axiom << " diverges at model " << visited;
                }
                ++visited;
                return true;
            });
        EXPECT_TRUE(completed) << axiom;
        EXPECT_EQ(visited, expected.size()) << axiom;
        EXPECT_EQ(streaming.stats().models, expected.size()) << axiom;
    }
}

TEST(StreamingEnumerate, EarlyStopVisitsExactlyAPrefix)
{
    const mtm::Model model = mtm::x86t_elt();
    const elt::Program program = elt::fixtures::fig10b_dirtybit3().program;
    mtm::ProgramEncoding encoding(program, &model);
    const std::vector<Execution> all = encoding.enumerate();
    ASSERT_GT(all.size(), 2u);

    mtm::ProgramEncoding stopped(program, &model);
    std::vector<Execution> seen;
    const bool completed = stopped.enumerate("", [&](const Execution& e) {
        seen.push_back(e);
        return seen.size() < 2;
    });
    EXPECT_FALSE(completed);  // the visitor stopped the solver
    ASSERT_EQ(seen.size(), 2u);
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_TRUE(same_witnesses(all[i], seen[i])) << "prefix model " << i;
    }
}

TEST(StreamingEnumerate, ReusedScratchIsBitStableAcrossQueries)
{
    const mtm::Model model = mtm::x86t_elt();
    const elt::Program program = elt::fixtures::fig10a_ptwalk2().program;
    mtm::EncodingScratch scratch;
    std::vector<Execution> first;
    {
        mtm::ProgramEncoding encoding(program, &model, &scratch);
        first = encoding.enumerate("causality");
    }
    for (int round = 0; round < 3; ++round) {
        mtm::ProgramEncoding encoding(program, &model, &scratch);
        const std::vector<Execution> again = encoding.enumerate("causality");
        ASSERT_EQ(again.size(), first.size()) << "round " << round;
        for (std::size_t i = 0; i < again.size(); ++i) {
            EXPECT_TRUE(same_witnesses(first[i], again[i]))
                << "round " << round << " model " << i;
        }
    }
}

TEST(StreamingEnumerate, NonVmModelWithVmAxiomsQueriesEmptyRelations)
{
    // Model is an open "define your own MTM" API: a non-VM model may carry
    // VM axioms, whose relations are empty on MCM programs. The need-gated
    // circuit builder must still initialize them (regression: it used to
    // skip them entirely and trip the relation-size assert).
    const mtm::Model hybrid("mcm_with_vm_axioms", /*vm_aware=*/false,
                            mtm::x86t_elt().axioms());
    const elt::Program program = elt::fixtures::fig2a_sb_mcm().program;
    mtm::ProgramEncoding encoding(program, &hybrid);
    EXPECT_FALSE(encoding.exists_violating("invlpg"));
    EXPECT_FALSE(encoding.exists_violating("tlb_causality"));
    EXPECT_TRUE(encoding.exists_execution());
}

TEST(SolverReset, BehavesLikeAFreshSolver)
{
    auto build = [](sat::Solver* s) {
        // x | y, !x | y, x | !y — satisfied only by x = y = true.
        const sat::Var x = s->new_var();
        const sat::Var y = s->new_var();
        s->add_binary(sat::Lit(x, false), sat::Lit(y, false));
        s->add_binary(sat::Lit(x, true), sat::Lit(y, false));
        s->add_binary(sat::Lit(x, false), sat::Lit(y, true));
    };
    sat::Solver fresh;
    build(&fresh);
    ASSERT_EQ(fresh.solve(), sat::SolveResult::kSat);

    sat::Solver reused;
    // Pollute with an unrelated UNSAT formula, then reset.
    const sat::Var z = reused.new_var();
    reused.add_unit(sat::Lit(z, false));
    reused.add_unit(sat::Lit(z, true));
    EXPECT_TRUE(reused.proven_unsat());
    reused.reset();
    EXPECT_FALSE(reused.proven_unsat());
    EXPECT_EQ(reused.num_vars(), 0);
    build(&reused);
    ASSERT_EQ(reused.solve(), sat::SolveResult::kSat);
    for (sat::Var v = 0; v < 2; ++v) {
        EXPECT_EQ(fresh.model_value(v), reused.model_value(v)) << "var " << v;
    }
    EXPECT_EQ(reused.stats().decisions, fresh.stats().decisions);
}

TEST(CanonicalScratch, KeysMatchScratchFreeOverload)
{
    synth::CanonicalScratch scratch;
    synth::SkeletonOptions opt;
    opt.num_events = 4;
    int programs = 0;
    synth::for_each_skeleton(opt, [&](const elt::Program& p) {
        EXPECT_EQ(synth::canonical_key(p),
                  synth::canonical_key(p, &scratch));
        return ++programs < 100;
    });
    EXPECT_GT(programs, 0);
}

TEST(JudgeScratch, AgreesWithDiagnosticJudge)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::JudgeScratch scratch;
    struct Case {
        Execution (*make)();
    };
    const Case cases[] = {
        {elt::fixtures::fig10a_ptwalk2},
        {elt::fixtures::fig10b_dirtybit3},
        {elt::fixtures::fig11_new_elt},
        {elt::fixtures::fig4_remap_chain},
        {elt::fixtures::fig2c_sb_elt_aliased},
    };
    for (const Case& c : cases) {
        const Execution e = c.make();
        const synth::MinimalityVerdict diagnostic = synth::judge(model, e);
        const synth::MinimalityVerdict fast =
            synth::judge(model, e, &scratch);
        EXPECT_EQ(diagnostic.interesting, fast.interesting);
        EXPECT_EQ(diagnostic.minimal, fast.minimal);
        EXPECT_EQ(diagnostic.violated_mask, fast.violated_mask);
        // The diagnostic names are exactly the mask, decoded.
        EXPECT_EQ(diagnostic.violated,
                  model.mask_names(fast.violated_mask));
        EXPECT_TRUE(fast.violated.empty());  // fast path skips strings
    }
}

TEST(ViolatedMask, MatchesStringShimOnFixtures)
{
    struct Case {
        Execution (*make)();
        bool vm;
    };
    const Case cases[] = {
        {elt::fixtures::fig2a_sb_mcm, false},
        {elt::fixtures::fig2c_sb_elt_aliased, true},
        {elt::fixtures::fig10a_ptwalk2, true},
        {elt::fixtures::fig10b_dirtybit3, true},
    };
    elt::DeriveScratch scratch;
    for (const Case& c : cases) {
        const mtm::Model model = c.vm ? mtm::x86t_elt() : mtm::x86tso();
        const Execution e = c.make();
        const auto derived = elt::derive(e, model.derive_options());
        ASSERT_TRUE(derived.well_formed);
        const mtm::AxiomMask mask =
            model.violated_mask(e.program, derived, &scratch.cycle);
        EXPECT_EQ(model.mask_names(mask),
                  model.violated_axioms(e.program, derived));
        // Mask bit positions follow axiom order.
        for (std::size_t i = 0; i < model.axioms().size(); ++i) {
            const bool bit = (mask & (mtm::AxiomMask{1} << i)) != 0;
            const bool holds = model.axioms()[i].holds(e.program, derived,
                                                       &scratch.cycle);
            EXPECT_EQ(bit, !holds) << model.axioms()[i].name;
        }
    }
}

}  // namespace
}  // namespace transform
