/// \file
/// Differential battery for the assumption-based incremental SAT path
/// (mtm/incremental.h): the live per-worker session must be
/// observationally indistinguishable from the fresh per-candidate
/// encoding at every level —
///
///  - per candidate: the enumerated model set over the projection
///    variables matches the fresh ProgramEncoding exactly, across the
///    whole embedded model zoo, every axiom (plus unfiltered
///    enumeration), and several event bounds;
///  - per suite: synthesize_suite output is byte-identical (tests, their
///    order, witnesses, violated sets, and the search counters) with
///    sat_incremental on or off, for every model of the zoo and across
///    the jobs x shard-depth matrix.
///
/// These tests run under TSan/ASan in CI (see .github/workflows), so the
/// bounds are chosen to keep each case in the hundreds of milliseconds.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "mtm/encoding.h"
#include "mtm/incremental.h"
#include "mtm/model.h"
#include "spec/registry.h"
#include "synth/engine.h"
#include "synth/skeleton.h"

namespace transform {
namespace {

/// Model-set key of one execution: the projection the blocking clauses
/// range over, so two enumerations agree iff these multisets agree.
std::vector<int>
execution_key(const elt::Execution& e)
{
    std::vector<int> key;
    key.reserve(e.rf_src.size() * 4);
    key.insert(key.end(), e.rf_src.begin(), e.rf_src.end());
    key.insert(key.end(), e.co_pos.begin(), e.co_pos.end());
    key.insert(key.end(), e.ptw_src.begin(), e.ptw_src.end());
    key.insert(key.end(), e.co_pa_pos.begin(), e.co_pa_pos.end());
    return key;
}

/// Full byte-level signature of a suite sequence: program events, witness
/// vectors, violated sets, and the counters the determinism contract
/// covers. Any divergence between the incremental and fresh paths shows
/// up here.
std::string
suite_signature(const std::vector<synth::SuiteResult>& suites)
{
    std::string sig;
    for (const synth::SuiteResult& suite : suites) {
        sig += suite.axiom + "|";
        sig += std::to_string(suite.programs_considered) + "|";
        sig += std::to_string(suite.executions_considered) + "|";
        sig += std::to_string(suite.duplicates_rejected) + "|";
        for (const synth::SynthesizedTest& t : suite.tests) {
            sig += t.canonical_key + ";" + std::to_string(t.size) + ";";
            for (const std::string& v : t.violated) {
                sig += v + ",";
            }
            const elt::Program& p = t.witness.program;
            for (int e = 0; e < p.num_events(); ++e) {
                const elt::Event& ev = p.event(e);
                sig += std::to_string(static_cast<int>(ev.kind)) + "/" +
                       std::to_string(ev.thread) + "/" +
                       std::to_string(ev.va) + "/" +
                       std::to_string(ev.map_pa) + " ";
            }
            for (int x : t.witness.rf_src) {
                sig += std::to_string(x) + ".";
            }
            for (int x : t.witness.co_pos) {
                sig += std::to_string(x) + ".";
            }
            for (int x : t.witness.ptw_src) {
                sig += std::to_string(x) + ".";
            }
            for (int x : t.witness.co_pa_pos) {
                sig += std::to_string(x) + ".";
            }
            sig += ";";
        }
    }
    return sig;
}

mtm::Model
zoo_model(const std::string& name)
{
    std::string error;
    const std::optional<spec::ResolvedModel> resolved =
        spec::resolve_model(name, &error);
    EXPECT_TRUE(resolved.has_value()) << name << ": " << error;
    return resolved->model;
}

std::vector<std::string>
zoo_names()
{
    std::vector<std::string> names;
    for (const spec::RegistryEntry& entry : spec::registry_entries()) {
        names.push_back(entry.name);
    }
    return names;
}

/// Per-candidate differential: one live session vs a fresh encoding per
/// skeleton candidate, over every axiom of the model (and the unfiltered
/// enumeration) at the given bound. The model multisets must be equal
/// candidate by candidate — not just the counts.
void
check_per_candidate(const mtm::Model& model, int bound)
{
    std::vector<std::string> axioms{""};
    for (const mtm::Axiom& ax : model.axioms()) {
        axioms.push_back(ax.name);
    }
    synth::SkeletonOptions opts;
    opts.num_events = bound;
    opts.vm_enabled = model.vm_aware();
    opts.allow_full_flush = true;
    for (const std::string& axiom : axioms) {
        mtm::EncodingScratch scratch;
        mtm::IncrementalEncoding live;
        live.configure(&model, axiom, opts.max_vas,
                       opts.max_vas + opts.max_fresh_pas);
        synth::for_each_skeleton(opts, [&](const elt::Program& program) {
            std::vector<std::vector<int>> fresh_keys;
            std::vector<std::vector<int>> live_keys;
            mtm::ProgramEncoding fresh(program, &model, &scratch);
            fresh.enumerate(axiom, [&](const elt::Execution& e) {
                fresh_keys.push_back(execution_key(e));
                return true;
            });
            live.enumerate(program, [&](const elt::Execution& e) {
                live_keys.push_back(execution_key(e));
                return true;
            });
            std::sort(fresh_keys.begin(), fresh_keys.end());
            std::sort(live_keys.begin(), live_keys.end());
            EXPECT_EQ(fresh_keys, live_keys)
                << model.name() << " axiom='" << axiom << "' bound=" << bound;
            return fresh_keys == live_keys;  // stop at the first divergence
        });
    }
}

TEST(SatIncremental, PerCandidateModelsMatchFreshAcrossZoo)
{
    for (const std::string& name : zoo_names()) {
        const mtm::Model model = zoo_model(name);
        check_per_candidate(model, 3);
        check_per_candidate(model, 4);
    }
}

TEST(SatIncremental, PerCandidateModelsMatchFreshBuiltinsBound5)
{
    check_per_candidate(mtm::x86tso(), 5);
    check_per_candidate(mtm::x86t_elt(), 5);
}

TEST(SatIncremental, SuitesByteIdenticalAcrossZoo)
{
    for (const std::string& name : zoo_names()) {
        const mtm::Model model = zoo_model(name);
        synth::SynthesisOptions options;
        options.min_bound = 2;
        options.bound = 4;
        options.backend = synth::Backend::kSat;
        options.sat_incremental = false;
        const std::string fresh =
            suite_signature(synth::synthesize_all(model, options));
        options.sat_incremental = true;
        const std::string live =
            suite_signature(synth::synthesize_all(model, options));
        EXPECT_EQ(fresh, live) << name;
    }
}

TEST(SatIncremental, SuitesByteIdenticalAcrossJobsAndShardDepth)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions options;
    options.min_bound = 3;
    options.bound = 5;
    options.backend = synth::Backend::kSat;
    options.sat_incremental = false;
    options.jobs = 1;
    const std::string reference =
        suite_signature(synth::synthesize_all(model, options));
    options.sat_incremental = true;
    for (const int jobs : {1, 2, 4}) {
        for (const int shard_depth : {0, 1, 2}) {
            options.jobs = jobs;
            options.shard_depth = shard_depth;
            const std::string live =
                suite_signature(synth::synthesize_all(model, options));
            EXPECT_EQ(reference, live)
                << "jobs=" << jobs << " shard_depth=" << shard_depth;
        }
    }
}

/// Base-cache differential, per candidate: a session with the cache
/// disabled (capacity 0 — every structure change rebuilds, the pre-cache
/// behavior) enumerates exactly the same model multisets as a session
/// with the default cache, across the skeleton stream whose rmw/linking
/// stages ping-pong between structures. Also pins the counters: the
/// cached session actually reuses bases, the uncached one never does.
TEST(SatIncremental, BaseCacheOffMatchesDefaultPerCandidate)
{
    // MCM vocabulary at bound 4: plain same-thread (R, W) pairs are free
    // to alias or not, so the innermost rmw-marking stage alternates the
    // structure key under a fixed placement prefix — the revisit pattern
    // the cache exists for. (vm-on at this bound pins every rmw-markable
    // pair to one VA assignment, so its key stream happens to be
    // monotone and the cache would never hit.)
    const mtm::Model model = mtm::x86tso();
    synth::SkeletonOptions opts;
    opts.num_events = 4;
    opts.vm_enabled = false;
    mtm::IncrementalEncoding cached;
    cached.configure(&model, "sc_per_loc", opts.max_vas,
                     opts.max_vas + opts.max_fresh_pas);
    mtm::IncrementalEncoding uncached;
    uncached.configure(&model, "sc_per_loc", opts.max_vas,
                       opts.max_vas + opts.max_fresh_pas);
    uncached.set_base_cache_capacity(0);
    synth::for_each_skeleton(opts, [&](const elt::Program& program) {
        std::vector<std::vector<int>> cached_keys;
        std::vector<std::vector<int>> uncached_keys;
        cached.enumerate(program, [&](const elt::Execution& e) {
            cached_keys.push_back(execution_key(e));
            return true;
        });
        uncached.enumerate(program, [&](const elt::Execution& e) {
            uncached_keys.push_back(execution_key(e));
            return true;
        });
        std::sort(cached_keys.begin(), cached_keys.end());
        std::sort(uncached_keys.begin(), uncached_keys.end());
        EXPECT_EQ(cached_keys, uncached_keys);
        return cached_keys == uncached_keys;
    });
    EXPECT_GT(cached.session_stats().candidates, 0u);
    EXPECT_EQ(cached.session_stats().candidates,
              uncached.session_stats().candidates);
    EXPECT_GT(cached.session_stats().bases_reused, 0u)
        << "the enumeration order must revisit structures for the cache "
           "to earn its keep";
    EXPECT_EQ(uncached.session_stats().bases_reused, 0u);
    EXPECT_LT(cached.session_stats().bases_built,
              uncached.session_stats().bases_built);
    // The counters surface through the merged lifetime stats too.
    EXPECT_EQ(cached.lifetime_stats().bases_built,
              cached.session_stats().bases_built);
    EXPECT_EQ(cached.lifetime_stats().bases_reused,
              cached.session_stats().bases_reused);
}

/// Base-cache differential, per suite: synthesize_all through the engine
/// with the cache off vs the default capacity must be byte-identical for
/// every zoo model and across the jobs x shard-depth matrix (the replay
/// discipline makes cache effects invisible to suites; this pins it).
TEST(SatIncremental, SuitesByteIdenticalWithBaseCacheOnOrOff)
{
    for (const std::string& name : zoo_names()) {
        const mtm::Model model = zoo_model(name);
        synth::SynthesisOptions options;
        options.min_bound = 2;
        options.bound = 4;
        options.backend = synth::Backend::kSat;
        options.sat_incremental = true;
        options.sat_base_cache_capacity = 0;
        const std::string uncached =
            suite_signature(synth::synthesize_all(model, options));
        options.sat_base_cache_capacity = 8;
        const std::string cached =
            suite_signature(synth::synthesize_all(model, options));
        EXPECT_EQ(uncached, cached) << name;
    }
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions options;
    options.min_bound = 3;
    options.bound = 5;
    options.backend = synth::Backend::kSat;
    options.sat_incremental = true;
    options.sat_base_cache_capacity = 0;
    options.jobs = 1;
    const std::string reference =
        suite_signature(synth::synthesize_all(model, options));
    options.sat_base_cache_capacity = 8;
    for (const int jobs : {1, 2, 4}) {
        for (const int shard_depth : {0, 1, 2}) {
            options.jobs = jobs;
            options.shard_depth = shard_depth;
            const std::string cached =
                suite_signature(synth::synthesize_all(model, options));
            EXPECT_EQ(reference, cached)
                << "jobs=" << jobs << " shard_depth=" << shard_depth;
        }
    }
}

/// The session survives a visitor that stops mid-enumeration (the
/// engine's accept path) and stays exact for the following candidates —
/// the kept solver trail and deferred guard retirement must not leak
/// models across the stop.
TEST(SatIncremental, EarlyStopDoesNotPerturbLaterCandidates)
{
    const mtm::Model model = mtm::x86t_elt();
    synth::SkeletonOptions opts;
    opts.num_events = 4;
    opts.vm_enabled = true;
    mtm::EncodingScratch scratch;
    mtm::IncrementalEncoding live;
    live.configure(&model, "sc_per_loc", opts.max_vas,
                   opts.max_vas + opts.max_fresh_pas);
    int candidate = 0;
    synth::for_each_skeleton(opts, [&](const elt::Program& program) {
        ++candidate;
        if (candidate % 3 == 0) {
            // Stop after the first model on every third candidate.
            live.enumerate(program,
                           [&](const elt::Execution&) { return false; });
            return true;
        }
        std::vector<std::vector<int>> fresh_keys;
        std::vector<std::vector<int>> live_keys;
        mtm::ProgramEncoding fresh(program, &model, &scratch);
        fresh.enumerate("sc_per_loc", [&](const elt::Execution& e) {
            fresh_keys.push_back(execution_key(e));
            return true;
        });
        live.enumerate(program, [&](const elt::Execution& e) {
            live_keys.push_back(execution_key(e));
            return true;
        });
        std::sort(fresh_keys.begin(), fresh_keys.end());
        std::sort(live_keys.begin(), live_keys.end());
        EXPECT_EQ(fresh_keys, live_keys) << "candidate " << candidate;
        return fresh_keys == live_keys;
    });
    EXPECT_GT(candidate, 0);
}

}  // namespace
}  // namespace transform
