/// \file
/// Unit tests for the CDCL SAT solver, DIMACS I/O and model enumeration.
#include <gtest/gtest.h>

#include "sat/dimacs.h"
#include "sat/enumerator.h"
#include "sat/solver.h"

namespace transform::sat {
namespace {

Lit
pos(Var v)
{
    return Lit(v, false);
}

Lit
neg(Var v)
{
    return Lit(v, true);
}

TEST(Lit, EncodingRoundTrip)
{
    const Lit a(3, false);
    EXPECT_EQ(a.var(), 3);
    EXPECT_FALSE(a.negated());
    EXPECT_TRUE((~a).negated());
    EXPECT_EQ((~a).var(), 3);
    EXPECT_EQ(~~a, a);
}

TEST(Solver, TrivialSat)
{
    Solver s;
    const Var a = s.new_var();
    s.add_unit(pos(a));
    EXPECT_EQ(s.solve(), SolveResult::kSat);
    EXPECT_EQ(s.model_value(a), LBool::kTrue);
}

TEST(Solver, TrivialUnsat)
{
    Solver s;
    const Var a = s.new_var();
    s.add_unit(pos(a));
    s.add_unit(neg(a));
    EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, EmptyClauseUnsat)
{
    Solver s;
    EXPECT_FALSE(s.add_clause({}));
    EXPECT_EQ(s.solve(), SolveResult::kUnsat);
}

TEST(Solver, TautologyDropped)
{
    Solver s;
    const Var a = s.new_var();
    EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
    EXPECT_EQ(s.solve(), SolveResult::kSat);
}

TEST(Solver, PropagationChain)
{
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    const Var c = s.new_var();
    s.add_unit(pos(a));
    s.add_binary(neg(a), pos(b));  // a -> b
    s.add_binary(neg(b), pos(c));  // b -> c
    EXPECT_EQ(s.solve(), SolveResult::kSat);
    EXPECT_EQ(s.model_value(c), LBool::kTrue);
}

TEST(Solver, XorChainSat)
{
    // x0 xor x1 = 1, x1 xor x2 = 1, ... satisfiable for any chain length.
    Solver s;
    const int n = 12;
    std::vector<Var> vars;
    for (int i = 0; i < n; ++i) {
        vars.push_back(s.new_var());
    }
    for (int i = 0; i + 1 < n; ++i) {
        s.add_binary(pos(vars[i]), pos(vars[i + 1]));
        s.add_binary(neg(vars[i]), neg(vars[i + 1]));
    }
    EXPECT_EQ(s.solve(), SolveResult::kSat);
    for (int i = 0; i + 1 < n; ++i) {
        EXPECT_NE(s.model_value(vars[i]) == LBool::kTrue,
                  s.model_value(vars[i + 1]) == LBool::kTrue);
    }
}

/// Pigeonhole principle: n+1 pigeons, n holes — classically hard UNSAT.
TEST(Solver, PigeonholeUnsat)
{
    const int holes = 5;
    const int pigeons = holes + 1;
    Solver s;
    std::vector<std::vector<Var>> in(pigeons, std::vector<Var>(holes));
    for (auto& row : in) {
        for (auto& v : row) {
            v = s.new_var();
        }
    }
    for (int p = 0; p < pigeons; ++p) {
        Clause clause;
        for (int h = 0; h < holes; ++h) {
            clause.push_back(pos(in[p][h]));
        }
        s.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h) {
        for (int p1 = 0; p1 < pigeons; ++p1) {
            for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
                s.add_binary(neg(in[p1][h]), neg(in[p2][h]));
            }
        }
    }
    EXPECT_EQ(s.solve(), SolveResult::kUnsat);
    EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Solver, AssumptionsSatThenUnsat)
{
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    s.add_binary(neg(a), pos(b));  // a -> b
    EXPECT_EQ(s.solve({pos(a)}), SolveResult::kSat);
    EXPECT_EQ(s.model_value(b), LBool::kTrue);
    EXPECT_EQ(s.solve({pos(a), neg(b)}), SolveResult::kUnsat);
    // The formula itself is still satisfiable.
    EXPECT_EQ(s.solve(), SolveResult::kSat);
    EXPECT_FALSE(s.proven_unsat());
}

TEST(Solver, ConflictBudgetReturnsUnknown)
{
    const int holes = 8;
    const int pigeons = holes + 1;
    Solver s;
    std::vector<std::vector<Var>> in(pigeons, std::vector<Var>(holes));
    for (auto& row : in) {
        for (auto& v : row) {
            v = s.new_var();
        }
    }
    for (int p = 0; p < pigeons; ++p) {
        Clause clause;
        for (int h = 0; h < holes; ++h) {
            clause.push_back(pos(in[p][h]));
        }
        s.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h) {
        for (int p1 = 0; p1 < pigeons; ++p1) {
            for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
                s.add_binary(neg(in[p1][h]), neg(in[p2][h]));
            }
        }
    }
    EXPECT_EQ(s.solve({}, /*conflict_budget=*/5), SolveResult::kUnknown);
}

TEST(Enumerator, CountsAllModels)
{
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    const Var c = s.new_var();
    s.add_ternary(pos(a), pos(b), pos(c));  // at least one true: 7 models
    int count = 0;
    const EnumerationStats stats = enumerate_models(
        &s, {a, b, c}, [&](const std::vector<bool>&) {
            ++count;
            return true;
        });
    EXPECT_EQ(count, 7);
    EXPECT_TRUE(stats.exhausted);
    EXPECT_EQ(stats.models, 7u);
}

TEST(Enumerator, ProjectionCollapsesModels)
{
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    (void)b;  // free variable not in the projection
    s.add_clause({pos(a)});
    int count = 0;
    enumerate_models(&s, {a}, [&](const std::vector<bool>& values) {
        EXPECT_TRUE(values[0]);
        ++count;
        return true;
    });
    EXPECT_EQ(count, 1);
}

TEST(Enumerator, MaxModelsStopsEarly)
{
    Solver s;
    const Var a = s.new_var();
    const Var b = s.new_var();
    (void)a;
    (void)b;
    int count = 0;
    const EnumerationStats stats = enumerate_models(
        &s, {a, b},
        [&](const std::vector<bool>&) {
            ++count;
            return true;
        },
        /*max_models=*/2);
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(stats.exhausted);
}

TEST(Dimacs, RoundTrip)
{
    const std::string text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
    CnfFormula formula;
    ASSERT_TRUE(parse_dimacs_string(text, &formula));
    EXPECT_EQ(formula.num_vars, 3);
    ASSERT_EQ(formula.clauses.size(), 2u);
    EXPECT_EQ(formula.clauses[0].size(), 2u);
    const std::string emitted = to_dimacs(formula);
    CnfFormula again;
    ASSERT_TRUE(parse_dimacs_string(emitted, &again));
    EXPECT_EQ(again.clauses, formula.clauses);
}

TEST(Dimacs, RejectsMalformed)
{
    CnfFormula formula;
    EXPECT_FALSE(parse_dimacs_string("1 2 0\n", &formula));       // no header
    EXPECT_FALSE(parse_dimacs_string("p cnf 1 1\n5 0\n", &formula));  // var > n
    EXPECT_FALSE(parse_dimacs_string("p cnf 1 1\n1\n", &formula));    // no 0
}

TEST(Dimacs, LoadIntoSolver)
{
    CnfFormula formula;
    ASSERT_TRUE(parse_dimacs_string("p cnf 2 2\n1 0\n-1 2 0\n", &formula));
    Solver s;
    ASSERT_TRUE(load_into_solver(formula, &s));
    EXPECT_EQ(s.solve(), SolveResult::kSat);
    EXPECT_EQ(s.model_value(1), LBool::kTrue);
}

/// Random 3-SAT instances cross-checked against brute force.
TEST(Solver, RandomInstancesMatchBruteForce)
{
    std::uint64_t seed = 0x12345678;
    auto next_random = [&seed]() {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<std::uint32_t>(seed >> 33);
    };
    for (int trial = 0; trial < 60; ++trial) {
        const int num_vars = 6;
        const int num_clauses = 3 + static_cast<int>(next_random() % 20);
        std::vector<Clause> clauses;
        for (int c = 0; c < num_clauses; ++c) {
            Clause clause;
            for (int k = 0; k < 3; ++k) {
                const Var v = static_cast<Var>(next_random() % num_vars);
                clause.push_back(Lit(v, (next_random() & 1) != 0));
            }
            clauses.push_back(clause);
        }
        // Brute force.
        bool brute_sat = false;
        for (int assignment = 0; assignment < (1 << num_vars); ++assignment) {
            bool all = true;
            for (const Clause& clause : clauses) {
                bool any = false;
                for (const Lit l : clause) {
                    const bool value = ((assignment >> l.var()) & 1) != 0;
                    any = any || (value != l.negated());
                }
                all = all && any;
            }
            if (all) {
                brute_sat = true;
                break;
            }
        }
        Solver s;
        for (int v = 0; v < num_vars; ++v) {
            s.new_var();
        }
        bool ok = true;
        for (const Clause& clause : clauses) {
            ok = s.add_clause(clause) && ok;
        }
        const SolveResult result = ok ? s.solve() : SolveResult::kUnsat;
        EXPECT_EQ(result == SolveResult::kSat, brute_sat)
            << "trial " << trial;
    }
}

}  // namespace
}  // namespace transform::sat
