/// \file
/// Semantic cross-checks for the `.mtm` compilers against the hardwired
/// C++ axioms: the concrete interpreter must return the same verdict as
/// the original closure on EVERY well-formed execution of the paper's
/// fixture programs, and the symbolic lowering must enumerate exactly the
/// same violating execution spaces through the SAT backend. Plus unit
/// coverage for the expression algebra itself.
#include <gtest/gtest.h>

#include <algorithm>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "mtm/encoding.h"
#include "mtm/model.h"
#include "mtm/spec_printer.h"
#include "spec/compile.h"
#include "spec/eval.h"
#include "spec/parser.h"
#include "spec/registry.h"
#include "synth/exec_enum.h"

namespace transform::spec {
namespace {

using elt::EdgeSet;
using elt::Execution;

mtm::Model
zoo_model(const std::string& name)
{
    std::string error;
    const auto resolved = resolve_model(name, &error);
    EXPECT_TRUE(resolved.has_value()) << error;
    return resolved->model;
}

/// Names of the violated axioms, sorted (mask order == axiom order for
/// both models, but sorting keeps the comparison shape-agnostic).
std::vector<std::string>
sorted_violations(const mtm::Model& model, const Execution& e)
{
    std::vector<std::string> violated = model.violated_axioms(e);
    std::sort(violated.begin(), violated.end());
    return violated;
}

Execution (*const kFixtures[])() = {
    elt::fixtures::fig2a_sb_mcm,
    elt::fixtures::sb_both_reads_zero_mcm,
    elt::fixtures::fig2b_sb_elt,
    elt::fixtures::fig2c_sb_elt_aliased,
    elt::fixtures::fig4_remap_chain,
    elt::fixtures::fig5a_shared_walk,
    elt::fixtures::fig5b_invlpg_forces_walk,
    elt::fixtures::fig6_remap_disambiguation,
    elt::fixtures::fig8_non_minimal_mcm,
    elt::fixtures::fig10a_ptwalk2,
    elt::fixtures::fig10b_dirtybit3,
    elt::fixtures::fig11_new_elt,
};

/// Every well-formed execution of every fixture program: the builtin and
/// its DSL twin agree on the exact violation set.
void
expect_twin_agreement(const mtm::Model& builtin, const mtm::Model& twin)
{
    ASSERT_EQ(builtin.axioms().size(), twin.axioms().size());
    for (std::size_t i = 0; i < builtin.axioms().size(); ++i) {
        EXPECT_EQ(builtin.axioms()[i].name, twin.axioms()[i].name);
    }
    EXPECT_EQ(builtin.vm_aware(), twin.vm_aware());
    int compared = 0;
    for (const auto fixture : kFixtures) {
        const Execution fixed = fixture();
        synth::for_each_execution(
            fixed.program, builtin.vm_aware(), [&](const Execution& e) {
                EXPECT_EQ(sorted_violations(builtin, e),
                          sorted_violations(twin, e));
                ++compared;
                return true;
            });
    }
    // The sweep must have exercised real executions, not vacuously passed.
    EXPECT_GT(compared, 100);
}

TEST(SpecTwins, X86TsoConcreteVerdictsIdentical)
{
    expect_twin_agreement(mtm::x86tso(), zoo_model("x86tso.mtm"));
}

TEST(SpecTwins, X86tEltConcreteVerdictsIdentical)
{
    expect_twin_agreement(mtm::x86t_elt(), zoo_model("x86t_elt.mtm"));
}

TEST(SpecTwins, ScTEltConcreteVerdictsIdentical)
{
    expect_twin_agreement(mtm::sc_t_elt(), zoo_model("sc_t_elt.mtm"));
}

TEST(SpecTwins, ScratchAndScratchlessEvaluationAgree)
{
    const mtm::Model twin = zoo_model("x86t_elt.mtm");
    const Execution e = elt::fixtures::fig10a_ptwalk2();
    const elt::DerivedRelations d = elt::derive(e, twin.derive_options());
    ASSERT_TRUE(d.well_formed);
    elt::CycleScratch scratch;
    for (const mtm::Axiom& axiom : twin.axioms()) {
        const bool with = axiom.holds(e.program, d, &scratch);
        const bool without = axiom.holds(e.program, d, nullptr);
        EXPECT_EQ(with, without) << axiom.name;
        // The arena must balance: everything acquired was released.
        EXPECT_EQ(scratch.spec_pool_live, 0u) << axiom.name;
    }
}

/// The symbolic lowering agrees with the hardwired circuits: per axiom,
/// the SAT backend enumerates the same number of violating executions for
/// the builtin and the twin (the execution spaces are identical; only
/// solver enumeration order may differ).
void
expect_symbolic_agreement(const mtm::Model& builtin, const mtm::Model& twin,
                          const Execution& fixture)
{
    mtm::EncodingScratch scratch;
    for (std::size_t i = 0; i < builtin.axioms().size(); ++i) {
        const std::string& axiom = builtin.axioms()[i].name;
        mtm::ProgramEncoding builtin_enc(fixture.program, &builtin, &scratch);
        const auto builtin_violating = builtin_enc.enumerate(axiom);
        mtm::ProgramEncoding twin_enc(fixture.program, &twin, &scratch);
        const auto twin_violating = twin_enc.enumerate(axiom);
        EXPECT_EQ(builtin_violating.size(), twin_violating.size()) << axiom;
        // And every twin-enumerated witness is concretely violating under
        // the BUILTIN model — the two spaces are the same set, not just
        // the same size.
        for (const Execution& e : twin_violating) {
            const auto violated = builtin.violated_axioms(e);
            EXPECT_NE(std::find(violated.begin(), violated.end(), axiom),
                      violated.end());
        }
    }
    mtm::ProgramEncoding builtin_enc(fixture.program, &builtin, &scratch);
    mtm::ProgramEncoding twin_enc(fixture.program, &twin, &scratch);
    EXPECT_EQ(builtin_enc.exists_permitted(), twin_enc.exists_permitted());
}

TEST(SpecTwins, X86TsoSymbolicSpacesIdentical)
{
    expect_symbolic_agreement(mtm::x86tso(), zoo_model("x86tso.mtm"),
                              elt::fixtures::sb_both_reads_zero_mcm());
}

TEST(SpecTwins, X86tEltSymbolicSpacesIdentical)
{
    expect_symbolic_agreement(mtm::x86t_elt(), zoo_model("x86t_elt.mtm"),
                              elt::fixtures::fig10a_ptwalk2());
}

TEST(SpecTwins, ScTEltSymbolicSpacesIdentical)
{
    expect_symbolic_agreement(mtm::sc_t_elt(), zoo_model("sc_t_elt.mtm"),
                              elt::fixtures::fig2c_sb_elt_aliased());
}

// ---------------------------------------------------------------------------
// Expression algebra, concretely.
// ---------------------------------------------------------------------------

EdgeSet
eval_on(const char* expr_src, const Execution& e, bool vm)
{
    const std::string source =
        std::string("model t\nvm ") + (vm ? "on" : "off") +
        "\naxiom a: empty(" + expr_src + ")\n";
    Diagnostic diag;
    const auto spec = parse_model(source, &diag);
    EXPECT_TRUE(spec.has_value()) << diag.to_string("<eval_on>");
    const elt::DerivedRelations d = elt::derive(e, {vm});
    EXPECT_TRUE(d.well_formed);
    EdgeSet out;
    eval_expr(*spec->axioms[0].expr, e.program, d, nullptr, &out);
    return out;
}

EdgeSet
sorted(EdgeSet edges)
{
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

TEST(SpecEval, BaseAndSetAlgebra)
{
    const Execution e = elt::fixtures::sb_both_reads_zero_mcm();
    const elt::DerivedRelations d = elt::derive(e, {false});

    EXPECT_EQ(eval_on("rf | co | fr", e, false),
              sorted([&] {
                  EdgeSet all = d.rf;
                  all.insert(all.end(), d.co.begin(), d.co.end());
                  all.insert(all.end(), d.fr.begin(), d.fr.end());
                  return all;
              }()));
    EXPECT_EQ(eval_on("po & po", e, false), sorted(d.po));
    EXPECT_EQ(eval_on("po \\ po", e, false), EdgeSet{});
    EXPECT_EQ(eval_on("0", e, false), EdgeSet{});
    // Transpose is an involution.
    EXPECT_EQ(eval_on("rf^-1^-1", e, false), sorted(d.rf));
    // [W] ; po ; [R] == the W->R po pairs == po \ ppo (TSO's dropped pairs
    // restricted to memory events; in this MCM fixture all events are
    // memory events).
    EXPECT_EQ(eval_on("[W] ; po_mem ; [R]", e, false),
              eval_on("po_mem \\ ppo", e, false));
}

TEST(SpecEval, JoinAndClosure)
{
    const Execution e = elt::fixtures::sb_both_reads_zero_mcm();
    // po is already transitive: closure is a fixed point.
    EXPECT_EQ(eval_on("po^+", e, false), eval_on("po", e, false));
    // Chains: rf ; fr relates a write to the co-successors of its readers'
    // sources — check against a manual join.
    const EdgeSet rf = eval_on("rf", e, false);
    const EdgeSet fr = eval_on("fr", e, false);
    EdgeSet manual;
    for (const auto& [a, b] : rf) {
        for (const auto& [c, dd] : fr) {
            if (b == c) {
                manual.emplace_back(a, dd);
            }
        }
    }
    EXPECT_EQ(eval_on("rf ; fr", e, false), sorted(manual));
    // Closure of a genuine chain: po over one thread of the SB program is
    // {0->1}; its closure adds nothing, but (po | po^-1)^+ relates every
    // same-thread pair both ways.
    const EdgeSet sym = eval_on("(po | po^-1)^+", e, false);
    for (const auto& [a, b] : eval_on("po", e, false)) {
        EXPECT_NE(std::find(sym.begin(), sym.end(), elt::Edge(b, a)),
                  sym.end());
        EXPECT_NE(std::find(sym.begin(), sym.end(), elt::Edge(a, a)),
                  sym.end());
    }
}

TEST(SpecEval, VmRelationsOnFixtures)
{
    const Execution e = elt::fixtures::fig10a_ptwalk2();
    const elt::DerivedRelations d = elt::derive(e, {true});
    EXPECT_EQ(eval_on("fr_va", e, true), sorted(d.fr_va));
    EXPECT_EQ(eval_on("remap", e, true), sorted(d.remap));
    EXPECT_EQ(eval_on("rf_ptw", e, true), sorted(d.rf_ptw));
    EXPECT_EQ(eval_on("ghost", e, true), sorted(d.ghost));
    // Ghost events hang off their parents: ghost ⊆ [M] ; ghost ; [Ghost].
    EXPECT_EQ(eval_on("ghost", e, true),
              eval_on("ghost & ([M] ; ghost ; [Ghost])", e, true));
}

TEST(SpecEval, DeepLetChainsEvaluateInDagTimeNotTreeTime)
{
    // let a1 = a0 ; a0, ..., a25 = a24 ; a24 — a 2^25-node tree but a
    // 26-node DAG. Both compilers must stay linear in the DAG: the
    // concrete evaluator pins each body once (CycleScratch::spec_memo),
    // the encoder memoizes circuits and walks needs with a visited set.
    // Without those, this test (and any user model with shared
    // definitions) hangs rather than fails.
    std::string source = "model deep\nvm off\nlet a0 = po\n";
    constexpr int kDepth = 25;
    for (int i = 1; i <= kDepth; ++i) {
        source += "let a" + std::to_string(i) + " = a" +
                  std::to_string(i - 1) + " ; a" + std::to_string(i - 1) +
                  "\n";
    }
    source += "axiom deep_chain: acyclic(a" + std::to_string(kDepth) +
              " | rf)\n";
    Diagnostic diag;
    const auto spec = parse_model(source, &diag);
    ASSERT_TRUE(spec.has_value()) << diag.to_string("<deep>");
    const mtm::Model model = compile_model(*spec);

    const Execution e = elt::fixtures::sb_both_reads_zero_mcm();
    // po is transitive, so every a_i collapses to po: the axiom is plain
    // acyclic(po | rf) — permitted on this fixture.
    EXPECT_TRUE(model.violated_axioms(e).empty());
    // Concrete expression evaluation terminates and equals po ; po.
    EdgeSet deep;
    eval_expr(*spec->axioms[0].expr->lhs->lhs, e.program,
              elt::derive(e, {false}), nullptr, &deep);
    EXPECT_EQ(deep, eval_on("po ; po", e, false));
    // And the SAT backend builds/solves it without walking the tree.
    mtm::EncodingScratch scratch;
    mtm::ProgramEncoding enc(e.program, &model, &scratch);
    EXPECT_FALSE(enc.exists_violating("deep_chain"));
}

// ---------------------------------------------------------------------------
// Compiled models and printers.
// ---------------------------------------------------------------------------

TEST(SpecCompile, ModelCarriesSpecAndTags)
{
    const mtm::Model model = zoo_model("pso_t_elt");
    EXPECT_EQ(model.name(), "pso_t_elt");
    EXPECT_TRUE(model.vm_aware());
    ASSERT_NE(model.source_spec(), nullptr);
    EXPECT_EQ(model.source_spec()->lets.size(), 2u);
    for (const mtm::Axiom& axiom : model.axioms()) {
        EXPECT_EQ(axiom.tag, mtm::AxiomTag::kExpr);
        ASSERT_NE(axiom.def, nullptr);
        ASSERT_NE(axiom.def->expr, nullptr);
    }
    // Copying through the engine's 3-arg constructor keeps the axioms
    // evaluable (the AST is co-owned by each axiom).
    const mtm::Model copy(model.name(), model.vm_aware(), model.axioms());
    const Execution e = elt::fixtures::fig10a_ptwalk2();
    EXPECT_EQ(copy.violated_axioms(e), model.violated_axioms(e));
}

TEST(SpecCompile, ModelToMtmRoundTripsForBuiltinsAndTwins)
{
    for (const char* name :
         {"x86tso", "x86t_elt", "sc_t_elt", "x86tso.mtm", "pso.mtm"}) {
        const mtm::Model model = zoo_model(name);
        const std::string source = mtm::model_to_mtm(model);
        Diagnostic diag;
        const auto reparsed = parse_model(source, &diag);
        ASSERT_TRUE(reparsed.has_value())
            << name << ": " << diag.to_string("<model_to_mtm>");
        EXPECT_EQ(reparsed->name, model.name());
        EXPECT_EQ(reparsed->vm, model.vm_aware());
        ASSERT_EQ(reparsed->axioms.size(), model.axioms().size());
        // The re-parsed spec compiles to a model with identical concrete
        // verdicts — printing is semantics-preserving.
        const mtm::Model recompiled = compile_model(*reparsed);
        for (const auto fixture : kFixtures) {
            const Execution e = fixture();
            if (model.vm_aware() ||
                e.program.validate(false).empty()) {
                EXPECT_EQ(sorted_violations(recompiled, e),
                          sorted_violations(model, e))
                    << name;
            }
        }
    }
}

TEST(SpecCompile, AlloyPrinterHandlesExprAxioms)
{
    const mtm::Model model = zoo_model("pso.mtm");
    const std::string alloy = mtm::model_to_alloy(model);
    EXPECT_NE(alloy.find("pred causality"), std::string::npos);
    EXPECT_NE(alloy.find("ppo_pso"), std::string::npos);
}

}  // namespace
}  // namespace transform::spec
