/// \file
/// Unit tests for the relational layer (boolean factory, relation algebra,
/// constraint builders) against the SAT solver.
#include <gtest/gtest.h>

#include "rel/bool_factory.h"
#include "rel/constraints.h"
#include "rel/relation.h"
#include "sat/solver.h"

namespace transform::rel {
namespace {

TEST(BoolFactory, ConstantFolding)
{
    BoolFactory f;
    const ExprId t = f.mk_const(true);
    const ExprId fa = f.mk_const(false);
    EXPECT_EQ(f.mk_and(t, fa), kFalseExpr);
    EXPECT_EQ(f.mk_or(t, fa), kTrueExpr);
    EXPECT_EQ(f.mk_not(t), kFalseExpr);
    EXPECT_EQ(f.mk_not(f.mk_not(t)), kTrueExpr);
}

TEST(BoolFactory, HashConsingShares)
{
    BoolFactory f;
    sat::Solver s;
    const ExprId a = f.mk_var(s.new_var());
    const ExprId b = f.mk_var(s.new_var());
    const ExprId ab1 = f.mk_and(a, b);
    const ExprId ab2 = f.mk_and(b, a);  // canonical operand order
    EXPECT_EQ(ab1, ab2);
}

TEST(BoolFactory, ComplementRules)
{
    BoolFactory f;
    sat::Solver s;
    const ExprId a = f.mk_var(s.new_var());
    EXPECT_EQ(f.mk_and(a, f.mk_not(a)), kFalseExpr);
    EXPECT_EQ(f.mk_or(a, f.mk_not(a)), kTrueExpr);
    EXPECT_EQ(f.mk_and(a, a), a);
    EXPECT_EQ(f.mk_or(a, a), a);
}

TEST(BoolFactory, TseitinSatisfiability)
{
    BoolFactory f;
    sat::Solver s;
    const ExprId a = f.mk_var(s.new_var());
    const ExprId b = f.mk_var(s.new_var());
    // (a AND NOT b) must be satisfiable and force values.
    f.assert_true(f.mk_and(a, f.mk_not(b)), &s);
    ASSERT_EQ(s.solve(), sat::SolveResult::kSat);
    EXPECT_EQ(s.model_value(0), sat::LBool::kTrue);
    EXPECT_EQ(s.model_value(1), sat::LBool::kFalse);
}

TEST(BoolFactory, AssertFalseMakesUnsat)
{
    BoolFactory f;
    sat::Solver s;
    f.assert_true(kFalseExpr, &s);
    EXPECT_EQ(s.solve(), sat::SolveResult::kUnsat);
}

TEST(BoolFactory, XorSemantics)
{
    BoolFactory f;
    sat::Solver s;
    const sat::Var va = s.new_var();
    const sat::Var vb = s.new_var();
    const ExprId a = f.mk_var(va);
    const ExprId b = f.mk_var(vb);
    f.assert_true(f.mk_xor(a, b), &s);
    f.assert_true(a, &s);
    ASSERT_EQ(s.solve(), sat::SolveResult::kSat);
    EXPECT_EQ(s.model_value(vb), sat::LBool::kFalse);
}

TEST(BoolFactory, ExactlyOne)
{
    BoolFactory f;
    sat::Solver s;
    std::vector<ExprId> terms;
    std::vector<sat::Var> vars;
    for (int i = 0; i < 4; ++i) {
        vars.push_back(s.new_var());
        terms.push_back(f.mk_var(vars.back()));
    }
    f.assert_true(f.mk_exactly_one(terms), &s);
    ASSERT_EQ(s.solve(), sat::SolveResult::kSat);
    int trues = 0;
    for (const sat::Var v : vars) {
        trues += s.model_value(v) == sat::LBool::kTrue ? 1 : 0;
    }
    EXPECT_EQ(trues, 1);
}

TEST(BoolFactory, EvaluateMatchesSemantics)
{
    BoolFactory f;
    sat::Solver s;
    const sat::Var va = s.new_var();
    const sat::Var vb = s.new_var();
    const ExprId expr =
        f.mk_or(f.mk_and(f.mk_var(va), f.mk_not(f.mk_var(vb))),
                f.mk_const(false));
    auto value_of = [](bool a, bool b) {
        return [a, b](sat::Var v) { return v == 0 ? a : b; };
    };
    EXPECT_TRUE(f.evaluate(expr, value_of(true, false)));
    EXPECT_FALSE(f.evaluate(expr, value_of(true, true)));
    EXPECT_FALSE(f.evaluate(expr, value_of(false, false)));
}

TEST(Relation, ConstantJoin)
{
    BoolFactory f;
    // r = {(0,1)}, s = {(1,2)}: r.s = {(0,2)}.
    const RelExpr r = RelExpr::constant(&f, 3, {{0, 1}});
    const RelExpr s = RelExpr::constant(&f, 3, {{1, 2}});
    const RelExpr joined = r.join(&f, s);
    EXPECT_EQ(joined.at(0, 2), kTrueExpr);
    EXPECT_EQ(joined.at(0, 1), kFalseExpr);
    EXPECT_EQ(joined.at(1, 2), kFalseExpr);
}

TEST(Relation, TransposeConstant)
{
    BoolFactory f;
    const RelExpr r = RelExpr::constant(&f, 2, {{0, 1}});
    const RelExpr t = r.transpose(&f);
    EXPECT_EQ(t.at(1, 0), kTrueExpr);
    EXPECT_EQ(t.at(0, 1), kFalseExpr);
}

TEST(Relation, ClosureOfChain)
{
    BoolFactory f;
    const RelExpr r = RelExpr::constant(&f, 4, {{0, 1}, {1, 2}, {2, 3}});
    const RelExpr c = r.closure(&f);
    EXPECT_EQ(c.at(0, 3), kTrueExpr);
    EXPECT_EQ(c.at(0, 2), kTrueExpr);
    EXPECT_EQ(c.at(3, 0), kFalseExpr);
    EXPECT_EQ(c.at(0, 0), kFalseExpr);
}

TEST(Relation, AcyclicDetectsCycleConstant)
{
    BoolFactory f;
    const RelExpr cyclic = RelExpr::constant(&f, 3, {{0, 1}, {1, 2}, {2, 0}});
    EXPECT_EQ(cyclic.acyclic(&f), kFalseExpr);
    const RelExpr dag = RelExpr::constant(&f, 3, {{0, 1}, {1, 2}});
    EXPECT_EQ(dag.acyclic(&f), kTrueExpr);
}

TEST(Relation, FreeRelationAcyclicAgreesWithOrderEncoding)
{
    // For every assignment, closure-based acyclicity and the rank-order
    // encoding accept exactly the same relations. Enumerate a free 3x3
    // relation constrained acyclic by the rank encoding; check the closure
    // formula agrees on every model, and that the model count equals the
    // number of DAGs on 3 labelled nodes (25).
    BoolFactory f;
    sat::Solver s;
    const int n = 3;
    const RelExpr r = RelExpr::free(&f, &s, n);
    assert_acyclic_with_order(&f, &s, r);
    const ExprId closure_acyclic = r.acyclic(&f);

    std::vector<sat::Var> projection;
    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
            projection.push_back(a * n + b);  // entry vars are the first 9
        }
    }
    int models = 0;
    while (s.solve() == sat::SolveResult::kSat) {
        ++models;
        EXPECT_TRUE(f.evaluate(closure_acyclic, [&](sat::Var v) {
            return s.model_value(v) == sat::LBool::kTrue;
        }));
        sat::Clause blocking;
        for (const sat::Var v : projection) {
            blocking.push_back(
                sat::Lit(v, s.model_value(v) == sat::LBool::kTrue));
        }
        if (!s.add_clause(blocking)) {
            break;
        }
        if (models > 100) {
            break;  // safety net
        }
    }
    EXPECT_EQ(models, 25);  // DAGs on 3 labelled vertices
}

TEST(Relation, StrictTotalOrderCountsPermutations)
{
    BoolFactory f;
    sat::Solver s;
    const int n = 3;
    const RelExpr r = RelExpr::free(&f, &s, n);
    const SetExpr all = SetExpr::constant(&f, n, {0, 1, 2});
    f.assert_true(r.strict_total_order_on(&f, all), &s);
    int models = 0;
    while (s.solve() == sat::SolveResult::kSat && models <= 10) {
        ++models;
        sat::Clause blocking;
        for (int v = 0; v < n * n; ++v) {
            blocking.push_back(
                sat::Lit(v, s.model_value(v) == sat::LBool::kTrue));
        }
        if (!s.add_clause(blocking)) {
            break;
        }
    }
    EXPECT_EQ(models, 6);  // 3! total orders
}

TEST(Relation, FunctionalOnForcesUniqueTarget)
{
    BoolFactory f;
    sat::Solver s;
    const int n = 3;
    const RelExpr r = RelExpr::free(&f, &s, n);
    const SetExpr domain = SetExpr::constant(&f, n, {0});
    const SetExpr range = SetExpr::constant(&f, n, {1, 2});
    f.assert_true(r.functional_on(&f, domain, range), &s);
    ASSERT_EQ(s.solve(), sat::SolveResult::kSat);
    int targets = 0;
    for (int b = 0; b < n; ++b) {
        targets += s.model_value(0 * n + b) == sat::LBool::kTrue ? 1 : 0;
    }
    EXPECT_EQ(targets, 1);
    // Nothing outside the domain maps anywhere.
    for (int b = 0; b < n; ++b) {
        EXPECT_NE(s.model_value(1 * n + b), sat::LBool::kTrue);
        EXPECT_NE(s.model_value(2 * n + b), sat::LBool::kTrue);
    }
}

TEST(SetExpr, AlgebraOnConstants)
{
    BoolFactory f;
    const SetExpr a = SetExpr::constant(&f, 4, {0, 1});
    const SetExpr b = SetExpr::constant(&f, 4, {1, 2});
    EXPECT_EQ(a.set_union(&f, b).at(2), kTrueExpr);
    EXPECT_EQ(a.set_intersect(&f, b).at(1), kTrueExpr);
    EXPECT_EQ(a.set_intersect(&f, b).at(0), kFalseExpr);
    EXPECT_EQ(a.set_minus(&f, b).at(0), kTrueExpr);
    EXPECT_EQ(a.set_minus(&f, b).at(1), kFalseExpr);
    EXPECT_EQ(a.subset_of(&f, a.set_union(&f, b)), kTrueExpr);
}

TEST(UnionAll, CombinesParts)
{
    BoolFactory f;
    const RelExpr a = RelExpr::constant(&f, 3, {{0, 1}});
    const RelExpr b = RelExpr::constant(&f, 3, {{1, 2}});
    const RelExpr u = union_all(&f, 3, {&a, &b});
    EXPECT_EQ(u.at(0, 1), kTrueExpr);
    EXPECT_EQ(u.at(1, 2), kTrueExpr);
    EXPECT_EQ(u.at(2, 0), kFalseExpr);
    EXPECT_EQ(acyclic_union(&f, {&a, &b}), kTrueExpr);
}

}  // namespace
}  // namespace transform::rel
