/// \file
/// Unit tests for the skeleton enumerator.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "elt/derive.h"
#include "elt/printer.h"
#include "synth/canonical.h"
#include "synth/skeleton.h"

namespace transform::synth {
namespace {

using elt::EventKind;
using elt::Program;

int
count_skeletons(const SkeletonOptions& options)
{
    int count = 0;
    for_each_skeleton(options, [&](const Program&) {
        ++count;
        return true;
    });
    return count;
}

TEST(Skeleton, AllGeneratedProgramsValidate)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    opt.max_threads = 2;
    for_each_skeleton(opt, [&](const Program& p) {
        EXPECT_TRUE(p.validate().empty());
        EXPECT_EQ(p.num_events(), 4);
        return true;
    });
}

TEST(Skeleton, McmModeGeneratesNoVmEvents)
{
    SkeletonOptions opt;
    opt.num_events = 3;
    opt.vm_enabled = false;
    opt.max_threads = 2;
    for_each_skeleton(opt, [&](const Program& p) {
        for (int id = 0; id < p.num_events(); ++id) {
            const EventKind k = p.event(id).kind;
            EXPECT_TRUE(k == EventKind::kRead || k == EventKind::kWrite ||
                        k == EventKind::kMfence);
        }
        return true;
    });
    EXPECT_GT(count_skeletons(opt), 0);
}

TEST(Skeleton, BoundIsExact)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    opt.max_threads = 2;
    for_each_skeleton(opt, [&](const Program& p) {
        EXPECT_EQ(p.num_events(), 5);
        return true;
    });
}

TEST(Skeleton, RequireWptePrunes)
{
    SkeletonOptions plain;
    plain.num_events = 4;
    SkeletonOptions pruned = plain;
    pruned.require_wpte = true;
    int with_wpte = 0;
    for_each_skeleton(pruned, [&](const Program& p) {
        bool found = false;
        for (int id = 0; id < p.num_events(); ++id) {
            found = found || p.event(id).kind == EventKind::kWpte;
        }
        EXPECT_TRUE(found);
        ++with_wpte;
        return true;
    });
    EXPECT_GT(with_wpte, 0);
    EXPECT_LT(with_wpte, count_skeletons(plain));
}

TEST(Skeleton, RequireRmwPrunes)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    opt.require_rmw = true;
    for_each_skeleton(opt, [&](const Program& p) {
        EXPECT_FALSE(p.rmw_pairs().empty());
        return true;
    });
}

TEST(Skeleton, HitsAlwaysHaveALiveWalk)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    opt.max_threads = 2;
    for_each_skeleton(opt, [&](const Program& p) {
        // Every data access without its own walk must have an earlier
        // same-thread same-VA access with a walk and no INVLPG in between
        // (the enumerator's feasibility rule; re-checked here directly).
        for (int id = 0; id < p.num_events(); ++id) {
            if (!elt::is_data_access(p.event(id).kind) ||
                p.rptw_of(id) != elt::kNone) {
                continue;
            }
            bool ok = false;
            for (int other = 0; other < p.num_events(); ++other) {
                if (!elt::is_data_access(p.event(other).kind) ||
                    p.rptw_of(other) == elt::kNone) {
                    continue;
                }
                if (p.event(other).thread != p.event(id).thread ||
                    p.event(other).va != p.event(id).va ||
                    !p.precedes(other, id)) {
                    continue;
                }
                bool blocked = false;
                for (int inv = 0; inv < p.num_events(); ++inv) {
                    if (p.event(inv).kind == EventKind::kInvlpg &&
                        p.event(inv).thread == p.event(id).thread &&
                        p.event(inv).va == p.event(id).va &&
                        p.precedes(other, inv) && p.precedes(inv, id)) {
                        blocked = true;
                    }
                }
                ok = ok || !blocked;
            }
            EXPECT_TRUE(ok);
        }
        return true;
    });
}

TEST(Skeleton, WpteAlwaysFullyRemapped)
{
    SkeletonOptions opt;
    opt.num_events = 6;
    opt.max_threads = 2;
    opt.require_wpte = true;
    int seen = 0;
    for_each_skeleton(opt, [&](const Program& p) {
        ++seen;
        for (int id = 0; id < p.num_events(); ++id) {
            if (p.event(id).kind != EventKind::kWpte) {
                continue;
            }
            EXPECT_EQ(static_cast<int>(p.remap_targets(id).size()),
                      p.num_threads());
        }
        return seen < 500;  // sample
    });
    EXPECT_GT(seen, 0);
}

TEST(Skeleton, EarlyStopWorks)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    int count = 0;
    const bool completed = for_each_skeleton(opt, [&](const Program&) {
        ++count;
        return count < 3;
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(count, 3);
}

TEST(Skeleton, CountsGrowWithBound)
{
    SkeletonOptions opt4;
    opt4.num_events = 4;
    SkeletonOptions opt5;
    opt5.num_events = 5;
    EXPECT_GT(count_skeletons(opt5), count_skeletons(opt4));
}

/// The contract the parallel synthesis runtime depends on: searching the
/// shards of partition_skeletons in list order visits exactly the program
/// sequence of the unsharded enumeration.
TEST(Skeleton, ShardsConcatenateToFullEnumeration)
{
    for (const bool vm : {true, false}) {
        for (const int target : {1, 8, 64, 1000}) {
            SkeletonOptions opt;
            opt.num_events = vm ? 5 : 4;
            opt.vm_enabled = vm;
            std::vector<std::string> full;
            for_each_skeleton(opt, [&](const Program& p) {
                full.push_back(elt::program_to_string(p));
                return true;
            });
            std::vector<std::string> sharded;
            const auto shards = partition_skeletons(opt, target);
            EXPECT_GE(static_cast<int>(shards.size()), std::min(target, 2));
            for (const SkeletonShard& shard : shards) {
                for_each_skeleton(shard, [&](const Program& p) {
                    sharded.push_back(elt::program_to_string(p));
                    return true;
                });
            }
            EXPECT_EQ(full, sharded)
                << "vm=" << vm << " target=" << target;
        }
    }
}

/// The contract adaptive re-splitting depends on: a shard's children, in
/// list order, replay exactly the parent's program stream.
TEST(Skeleton, SplitShardChildrenConcatenateToParent)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    for (const SkeletonShard& parent : partition_skeletons_at_depth(opt, 1)) {
        std::vector<std::string> parent_stream;
        for_each_skeleton(parent, [&](const Program& p) {
            parent_stream.push_back(elt::program_to_string(p));
            return true;
        });
        std::vector<std::string> child_stream;
        const auto children = split_shard(parent);
        ASSERT_FALSE(children.empty());
        for (const SkeletonShard& child : children) {
            EXPECT_EQ(child.prefix.size(), parent.prefix.size() + 1);
            for_each_skeleton(child, [&](const Program& p) {
                child_stream.push_back(elt::program_to_string(p));
                return true;
            });
        }
        EXPECT_EQ(parent_stream, child_stream);
    }
}

/// Closed-prefix splitting: a shard whose prefix closed thread 0 splits on
/// thread 1+ decisions, and its children in list order replay the parent's
/// program stream exactly — the property that lets deep adaptive re-splits
/// keep subdividing a heavy one-slot-first-thread subtree instead of
/// dead-ending.
TEST(Skeleton, SplitShardClosedPrefixChildrenReplayParentStream)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    int closed_parents_with_children = 0;
    for (const SkeletonShard& depth1 : partition_skeletons_at_depth(opt, 1)) {
        for (const SkeletonShard& parent : split_shard(depth1)) {
            if (parent.prefix.back() != kCloseThread) {
                continue;
            }
            const auto children = split_shard(parent);
            std::vector<std::string> parent_stream;
            for_each_skeleton(parent, [&](const Program& p) {
                parent_stream.push_back(elt::program_to_string(p));
                return true;
            });
            if (children.empty()) {
                continue;  // slot structure fully pinned: nothing to split
            }
            ++closed_parents_with_children;
            std::vector<std::string> child_stream;
            for (const SkeletonShard& child : children) {
                EXPECT_EQ(child.prefix.size(), parent.prefix.size() + 1);
                // Thread 0 is closed, so the new decision constrains a
                // later thread.
                EXPECT_EQ(child.prefix[parent.prefix.size() - 1],
                          kCloseThread);
                for_each_skeleton(child, [&](const Program& p) {
                    child_stream.push_back(elt::program_to_string(p));
                    return true;
                });
            }
            EXPECT_EQ(parent_stream, child_stream);
        }
    }
    EXPECT_GT(closed_parents_with_children, 0);
}

/// Recursively splitting every shard to the bottom of the decision tree
/// (children empty only once a prefix pins the complete slot structure)
/// must still concatenate, leaf by leaf, to the full enumeration stream —
/// the strongest form of the replay contract, exercising closed-prefix
/// splits at every level.
TEST(Skeleton, RecursiveSplitLeavesConcatenateToFullEnumeration)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    std::vector<std::string> full;
    for_each_skeleton(opt, [&](const Program& p) {
        full.push_back(elt::program_to_string(p));
        return true;
    });
    std::vector<std::string> leaves;
    int max_depth = 0;
    const std::function<void(const SkeletonShard&)> descend =
        [&](const SkeletonShard& shard) {
            const auto children = split_shard(shard);
            if (children.empty()) {
                max_depth = std::max(
                    max_depth, static_cast<int>(shard.prefix.size()));
                for_each_skeleton(shard, [&](const Program& p) {
                    leaves.push_back(elt::program_to_string(p));
                    return true;
                });
                return;
            }
            for (const SkeletonShard& child : children) {
                descend(child);
            }
        };
    descend({opt, {}});
    EXPECT_EQ(full, leaves);
    // The tree bottoms out past thread 0 (pre-PR splitting stopped at the
    // first kCloseThread, never deeper than num_events + 1).
    EXPECT_GT(max_depth, opt.num_events + 1);
}

TEST(Skeleton, FixedDepthPartitionCoversFullEnumeration)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    std::vector<std::string> full;
    for_each_skeleton(opt, [&](const Program& p) {
        full.push_back(elt::program_to_string(p));
        return true;
    });
    for (const int depth : {1, 2, 3, 4}) {
        std::vector<std::string> sharded;
        for (const SkeletonShard& shard :
             partition_skeletons_at_depth(opt, depth)) {
            EXPECT_LE(shard.prefix.size(), static_cast<std::size_t>(depth));
            for_each_skeleton(shard, [&](const Program& p) {
                sharded.push_back(elt::program_to_string(p));
                return true;
            });
        }
        EXPECT_EQ(full, sharded) << "depth=" << depth;
    }
}

TEST(Skeleton, CountSkeletonsProbeStopsAtLimit)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    const SkeletonShard whole{opt, {}};
    const std::uint64_t total =
        count_skeletons(whole, std::uint64_t{1} << 32);
    EXPECT_GT(total, 10u);
    EXPECT_EQ(count_skeletons(whole, 10), 10u);
    EXPECT_EQ(count_skeletons(whole, total + 100), total);
}

TEST(Skeleton, ShardVisitStopsEarly)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    const auto shards = partition_skeletons(opt, 8);
    ASSERT_FALSE(shards.empty());
    int count = 0;
    const bool completed = for_each_skeleton(shards[0], [&](const Program&) {
        ++count;
        return false;
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(count, 1);
}

TEST(Skeleton, SearchSkeletonsSkipDropsALeadingPrefix)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    const SkeletonShard whole{opt, {}};
    std::vector<std::string> full;
    for_each_skeleton(whole, [&](const Program& p) {
        full.push_back(elt::program_to_string(p));
        return true;
    });
    for (const std::uint64_t skip : {std::uint64_t{0}, std::uint64_t{1},
                                     std::uint64_t{17},
                                     static_cast<std::uint64_t>(
                                         full.size())}) {
        std::vector<std::string> rest;
        const ShardSearchStop stop = search_skeletons(
            whole, skip, /*limit=*/0, [&](const Program& p) {
                rest.push_back(elt::program_to_string(p));
                return true;
            });
        EXPECT_FALSE(stop.hit_limit);
        EXPECT_FALSE(stop.visitor_stopped);
        EXPECT_EQ(stop.visited, full.size() - skip);
        EXPECT_EQ(rest,
                  std::vector<std::string>(full.begin() +
                                               static_cast<long>(skip),
                                           full.end()));
    }
}

TEST(Skeleton, SearchSkeletonsLimitReportsAResumePoint)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    const SkeletonShard whole{opt, {}};
    std::vector<std::string> full;
    for_each_skeleton(whole, [&](const Program& p) {
        full.push_back(elt::program_to_string(p));
        return true;
    });
    ASSERT_GT(full.size(), 40u);
    std::vector<std::string> seen;
    const ShardSearchStop stop =
        search_skeletons(whole, /*skip=*/0, /*limit=*/40,
                         [&](const Program& p) {
                             seen.push_back(elt::program_to_string(p));
                             return true;
                         });
    EXPECT_TRUE(stop.hit_limit);
    EXPECT_FALSE(stop.visitor_stopped);
    EXPECT_EQ(stop.visited, 40u);
    EXPECT_EQ(seen, std::vector<std::string>(full.begin(),
                                             full.begin() + 40));
    // Resuming from the reported child (with its skip) and then visiting
    // the later children replays exactly the unvisited remainder — the
    // engine's lazy-resplit resubmission in miniature.
    const auto children = split_shard(whole);
    std::size_t boundary = children.size();
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (children[i].prefix.back() == stop.resume_decision) {
            boundary = i;
            break;
        }
    }
    ASSERT_LT(boundary, children.size());
    std::vector<std::string> remainder;
    const auto collect = [&](const Program& p) {
        remainder.push_back(elt::program_to_string(p));
        return true;
    };
    for (std::size_t i = boundary; i < children.size(); ++i) {
        const ShardSearchStop child_stop = search_skeletons(
            children[i], i == boundary ? stop.resume_skip : 0,
            /*limit=*/0, collect);
        EXPECT_FALSE(child_stop.hit_limit);
    }
    EXPECT_EQ(remainder,
              std::vector<std::string>(full.begin() + 40, full.end()));
}

TEST(Skeleton, SearchSkeletonsLimitInsideAClosedPrefixShard)
{
    // The same resume contract must hold when the bounded pass runs inside
    // a shard that already closed thread 0 (children constrain thread 1).
    SkeletonOptions opt;
    opt.num_events = 5;
    std::vector<SkeletonShard> closed_with_work;
    const std::function<void(const SkeletonShard&)> gather =
        [&](const SkeletonShard& shard) {
            if (!shard.prefix.empty() &&
                shard.prefix.back() == kCloseThread &&
                !split_shard(shard).empty() &&
                count_skeletons(shard, 30) > 20) {
                closed_with_work.push_back(shard);
                return;
            }
            for (const SkeletonShard& child : split_shard(shard)) {
                gather(child);
            }
        };
    gather({opt, {}});
    ASSERT_FALSE(closed_with_work.empty());
    const SkeletonShard& shard = closed_with_work.front();
    std::vector<std::string> full;
    for_each_skeleton(shard, [&](const Program& p) {
        full.push_back(elt::program_to_string(p));
        return true;
    });
    std::vector<std::string> replay;
    const auto collect = [&](const Program& p) {
        replay.push_back(elt::program_to_string(p));
        return true;
    };
    const ShardSearchStop stop =
        search_skeletons(shard, /*skip=*/0, /*limit=*/20, collect);
    ASSERT_TRUE(stop.hit_limit);
    const auto children = split_shard(shard);
    ASSERT_FALSE(children.empty());
    std::size_t boundary = children.size();
    for (std::size_t i = 0; i < children.size(); ++i) {
        if (children[i].prefix.back() == stop.resume_decision) {
            boundary = i;
            break;
        }
    }
    ASSERT_LT(boundary, children.size());
    for (std::size_t i = boundary; i < children.size(); ++i) {
        search_skeletons(children[i], i == boundary ? stop.resume_skip : 0,
                         /*limit=*/0, collect);
    }
    EXPECT_EQ(replay, full);
}

TEST(Skeleton, DirtyBitAsRmwAblationAddsRdb)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    opt.dirty_bit_as_rmw = true;
    bool saw_write = false;
    for_each_skeleton(opt, [&](const Program& p) {
        for (int id = 0; id < p.num_events(); ++id) {
            if (p.event(id).kind == EventKind::kWrite) {
                saw_write = true;
                EXPECT_NE(p.rdb_of(id), elt::kNone);
                EXPECT_NE(p.wdb_of(id), elt::kNone);
            }
        }
        return true;
    });
    EXPECT_TRUE(saw_write);
}

}  // namespace
}  // namespace transform::synth
