/// \file
/// Unit tests for the skeleton enumerator.
#include <gtest/gtest.h>

#include <set>

#include "elt/derive.h"
#include "elt/printer.h"
#include "synth/canonical.h"
#include "synth/skeleton.h"

namespace transform::synth {
namespace {

using elt::EventKind;
using elt::Program;

int
count_skeletons(const SkeletonOptions& options)
{
    int count = 0;
    for_each_skeleton(options, [&](const Program&) {
        ++count;
        return true;
    });
    return count;
}

TEST(Skeleton, AllGeneratedProgramsValidate)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    opt.max_threads = 2;
    for_each_skeleton(opt, [&](const Program& p) {
        EXPECT_TRUE(p.validate().empty());
        EXPECT_EQ(p.num_events(), 4);
        return true;
    });
}

TEST(Skeleton, McmModeGeneratesNoVmEvents)
{
    SkeletonOptions opt;
    opt.num_events = 3;
    opt.vm_enabled = false;
    opt.max_threads = 2;
    for_each_skeleton(opt, [&](const Program& p) {
        for (int id = 0; id < p.num_events(); ++id) {
            const EventKind k = p.event(id).kind;
            EXPECT_TRUE(k == EventKind::kRead || k == EventKind::kWrite ||
                        k == EventKind::kMfence);
        }
        return true;
    });
    EXPECT_GT(count_skeletons(opt), 0);
}

TEST(Skeleton, BoundIsExact)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    opt.max_threads = 2;
    for_each_skeleton(opt, [&](const Program& p) {
        EXPECT_EQ(p.num_events(), 5);
        return true;
    });
}

TEST(Skeleton, RequireWptePrunes)
{
    SkeletonOptions plain;
    plain.num_events = 4;
    SkeletonOptions pruned = plain;
    pruned.require_wpte = true;
    int with_wpte = 0;
    for_each_skeleton(pruned, [&](const Program& p) {
        bool found = false;
        for (int id = 0; id < p.num_events(); ++id) {
            found = found || p.event(id).kind == EventKind::kWpte;
        }
        EXPECT_TRUE(found);
        ++with_wpte;
        return true;
    });
    EXPECT_GT(with_wpte, 0);
    EXPECT_LT(with_wpte, count_skeletons(plain));
}

TEST(Skeleton, RequireRmwPrunes)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    opt.require_rmw = true;
    for_each_skeleton(opt, [&](const Program& p) {
        EXPECT_FALSE(p.rmw_pairs().empty());
        return true;
    });
}

TEST(Skeleton, HitsAlwaysHaveALiveWalk)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    opt.max_threads = 2;
    for_each_skeleton(opt, [&](const Program& p) {
        // Every data access without its own walk must have an earlier
        // same-thread same-VA access with a walk and no INVLPG in between
        // (the enumerator's feasibility rule; re-checked here directly).
        for (int id = 0; id < p.num_events(); ++id) {
            if (!elt::is_data_access(p.event(id).kind) ||
                p.rptw_of(id) != elt::kNone) {
                continue;
            }
            bool ok = false;
            for (int other = 0; other < p.num_events(); ++other) {
                if (!elt::is_data_access(p.event(other).kind) ||
                    p.rptw_of(other) == elt::kNone) {
                    continue;
                }
                if (p.event(other).thread != p.event(id).thread ||
                    p.event(other).va != p.event(id).va ||
                    !p.precedes(other, id)) {
                    continue;
                }
                bool blocked = false;
                for (int inv = 0; inv < p.num_events(); ++inv) {
                    if (p.event(inv).kind == EventKind::kInvlpg &&
                        p.event(inv).thread == p.event(id).thread &&
                        p.event(inv).va == p.event(id).va &&
                        p.precedes(other, inv) && p.precedes(inv, id)) {
                        blocked = true;
                    }
                }
                ok = ok || !blocked;
            }
            EXPECT_TRUE(ok);
        }
        return true;
    });
}

TEST(Skeleton, WpteAlwaysFullyRemapped)
{
    SkeletonOptions opt;
    opt.num_events = 6;
    opt.max_threads = 2;
    opt.require_wpte = true;
    int seen = 0;
    for_each_skeleton(opt, [&](const Program& p) {
        ++seen;
        for (int id = 0; id < p.num_events(); ++id) {
            if (p.event(id).kind != EventKind::kWpte) {
                continue;
            }
            EXPECT_EQ(static_cast<int>(p.remap_targets(id).size()),
                      p.num_threads());
        }
        return seen < 500;  // sample
    });
    EXPECT_GT(seen, 0);
}

TEST(Skeleton, EarlyStopWorks)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    int count = 0;
    const bool completed = for_each_skeleton(opt, [&](const Program&) {
        ++count;
        return count < 3;
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(count, 3);
}

TEST(Skeleton, CountsGrowWithBound)
{
    SkeletonOptions opt4;
    opt4.num_events = 4;
    SkeletonOptions opt5;
    opt5.num_events = 5;
    EXPECT_GT(count_skeletons(opt5), count_skeletons(opt4));
}

/// The contract the parallel synthesis runtime depends on: searching the
/// shards of partition_skeletons in list order visits exactly the program
/// sequence of the unsharded enumeration.
TEST(Skeleton, ShardsConcatenateToFullEnumeration)
{
    for (const bool vm : {true, false}) {
        for (const int target : {1, 8, 64, 1000}) {
            SkeletonOptions opt;
            opt.num_events = vm ? 5 : 4;
            opt.vm_enabled = vm;
            std::vector<std::string> full;
            for_each_skeleton(opt, [&](const Program& p) {
                full.push_back(elt::program_to_string(p));
                return true;
            });
            std::vector<std::string> sharded;
            const auto shards = partition_skeletons(opt, target);
            EXPECT_GE(static_cast<int>(shards.size()), std::min(target, 2));
            for (const SkeletonShard& shard : shards) {
                for_each_skeleton(shard, [&](const Program& p) {
                    sharded.push_back(elt::program_to_string(p));
                    return true;
                });
            }
            EXPECT_EQ(full, sharded)
                << "vm=" << vm << " target=" << target;
        }
    }
}

/// The contract adaptive re-splitting depends on: a shard's children, in
/// list order, replay exactly the parent's program stream.
TEST(Skeleton, SplitShardChildrenConcatenateToParent)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    for (const SkeletonShard& parent : partition_skeletons_at_depth(opt, 1)) {
        std::vector<std::string> parent_stream;
        for_each_skeleton(parent, [&](const Program& p) {
            parent_stream.push_back(elt::program_to_string(p));
            return true;
        });
        std::vector<std::string> child_stream;
        const auto children = split_shard(parent);
        ASSERT_FALSE(children.empty());
        for (const SkeletonShard& child : children) {
            EXPECT_EQ(child.prefix.size(), parent.prefix.size() + 1);
            for_each_skeleton(child, [&](const Program& p) {
                child_stream.push_back(elt::program_to_string(p));
                return true;
            });
        }
        EXPECT_EQ(parent_stream, child_stream);
    }
}

TEST(Skeleton, SplitShardRefusesClosedPrefix)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    SkeletonShard closed{opt, {0, kCloseThread}};
    EXPECT_TRUE(split_shard(closed).empty());
}

TEST(Skeleton, FixedDepthPartitionCoversFullEnumeration)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    std::vector<std::string> full;
    for_each_skeleton(opt, [&](const Program& p) {
        full.push_back(elt::program_to_string(p));
        return true;
    });
    for (const int depth : {1, 2, 3, 4}) {
        std::vector<std::string> sharded;
        for (const SkeletonShard& shard :
             partition_skeletons_at_depth(opt, depth)) {
            EXPECT_LE(shard.prefix.size(), static_cast<std::size_t>(depth));
            for_each_skeleton(shard, [&](const Program& p) {
                sharded.push_back(elt::program_to_string(p));
                return true;
            });
        }
        EXPECT_EQ(full, sharded) << "depth=" << depth;
    }
}

TEST(Skeleton, CountSkeletonsProbeStopsAtLimit)
{
    SkeletonOptions opt;
    opt.num_events = 5;
    const SkeletonShard whole{opt, {}};
    const std::uint64_t total =
        count_skeletons(whole, std::uint64_t{1} << 32);
    EXPECT_GT(total, 10u);
    EXPECT_EQ(count_skeletons(whole, 10), 10u);
    EXPECT_EQ(count_skeletons(whole, total + 100), total);
}

TEST(Skeleton, ShardVisitStopsEarly)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    const auto shards = partition_skeletons(opt, 8);
    ASSERT_FALSE(shards.empty());
    int count = 0;
    const bool completed = for_each_skeleton(shards[0], [&](const Program&) {
        ++count;
        return false;
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(count, 1);
}

TEST(Skeleton, DirtyBitAsRmwAblationAddsRdb)
{
    SkeletonOptions opt;
    opt.num_events = 4;
    opt.dirty_bit_as_rmw = true;
    bool saw_write = false;
    for_each_skeleton(opt, [&](const Program& p) {
        for (int id = 0; id < p.num_events(); ++id) {
            if (p.event(id).kind == EventKind::kWrite) {
                saw_write = true;
                EXPECT_NE(p.rdb_of(id), elt::kNone);
                EXPECT_NE(p.wdb_of(id), elt::kNone);
            }
        }
        return true;
    });
    EXPECT_TRUE(saw_write);
}

}  // namespace
}  // namespace transform::synth
