/// \file
/// Unit tests for derivation: well-formedness, address resolution and the
/// Table-I relations on the paper's figures.
#include <gtest/gtest.h>

#include <algorithm>

#include "elt/derive.h"
#include "elt/fixtures.h"

namespace transform::elt {
namespace {

bool
has_edge(const EdgeSet& edges, EventId from, EventId to)
{
    return std::find(edges.begin(), edges.end(), Edge{from, to}) != edges.end();
}

TEST(Derive, Fig2aMcmWellFormed)
{
    const Execution e = fixtures::fig2a_sb_mcm();
    const DerivedRelations d = derive(e, {/*vm_enabled=*/false});
    ASSERT_TRUE(d.well_formed) << (d.problems.empty() ? "" : d.problems[0]);
    EXPECT_EQ(d.rf.size(), 2u);
    EXPECT_TRUE(d.fr.empty());
    EXPECT_EQ(d.po.size(), 2u);
}

TEST(Derive, SbBothZeroHasFrEdges)
{
    const Execution e = fixtures::sb_both_reads_zero_mcm();
    const DerivedRelations d = derive(e, {/*vm_enabled=*/false});
    ASSERT_TRUE(d.well_formed);
    EXPECT_TRUE(d.rf.empty());
    EXPECT_EQ(d.fr.size(), 2u);  // both reads ordered before the writes
}

TEST(Derive, Fig10aResolution)
{
    const Execution e = fixtures::fig10a_ptwalk2();
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed) << (d.problems.empty() ? "" : d.problems[0]);
    // R2 reads through the stale initial mapping: PA a (= frame of x).
    EXPECT_EQ(d.resolved_pa[2], 0);
    EXPECT_EQ(d.provenance[2], kNone);
    // fr_va from R2 to the Wpte that remapped x.
    EXPECT_TRUE(has_edge(d.fr_va, 2, 0));
    // remap from the Wpte to its INVLPG.
    EXPECT_TRUE(has_edge(d.remap, 0, 1));
    // The walk reads the initial state, so fr(Rptw3, WPTE0) holds.
    EXPECT_TRUE(has_edge(d.fr, 3, 0));
    // po_loc between the PTE write and the walk of the same PTE.
    EXPECT_TRUE(has_edge(d.po_loc, 0, 3));
}

TEST(Derive, Fig10bResolution)
{
    const Execution e = fixtures::fig10b_dirtybit3();
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed) << (d.problems.empty() ? "" : d.problems[0]);
    // R2 uses the fresh mapping: PA b, provenance = WPTE0 (event 0).
    EXPECT_EQ(d.resolved_pa[2], 1);
    EXPECT_EQ(d.provenance[2], 0);
    EXPECT_TRUE(has_edge(d.rf_pa, 0, 2));
    // No stale access: fr_va is empty.
    EXPECT_TRUE(d.fr_va.empty());
}

TEST(Derive, Fig2cAliasingResolution)
{
    const Execution e = fixtures::fig2c_sb_elt_aliased();
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed) << (d.problems.empty() ? "" : d.problems[0]);
    // Find the user events: W0 x, W5 y, R2 y, R6 x by kind/VA.
    EventId w_x = kNone, w_y = kNone, r_y = kNone, r_x = kNone;
    const Program& p = e.program;
    for (EventId id = 0; id < p.num_events(); ++id) {
        if (p.event(id).kind == EventKind::kWrite) {
            (p.event(id).va == 0 ? w_x : w_y) = id;
        }
        if (p.event(id).kind == EventKind::kRead) {
            (p.event(id).va == 0 ? r_x : r_y) = id;
        }
    }
    ASSERT_NE(w_x, kNone);
    ASSERT_NE(w_y, kNone);
    // All four data events resolve to PA a (index 0): x and y now alias.
    EXPECT_EQ(d.resolved_pa[w_x], 0);
    EXPECT_EQ(d.resolved_pa[w_y], 0);
    EXPECT_EQ(d.resolved_pa[r_x], 0);
    EXPECT_EQ(d.resolved_pa[r_y], 0);
    // Coherence relates the two writes (same PA).
    EXPECT_TRUE(has_edge(d.co, w_x, w_y));
    // fr(R6 x, W5 y): reads W0, whose co-successor is W5.
    EXPECT_TRUE(has_edge(d.fr, r_x, w_y));
    // po_loc on C1 between W5 (y -> PA a) and R6 (x -> PA a).
    EXPECT_TRUE(has_edge(d.po_loc, w_y, r_x));
}

TEST(Derive, Fig4PaEdges)
{
    const Execution e = fixtures::fig4_remap_chain();
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed) << (d.problems.empty() ? "" : d.problems[0]);
    // Events in builder order: R0, Rptw0, R1, Rptw1, WPTE2, INVLPG, R4,
    // Rptw4, WPTE5, INVLPG, R7, Rptw7. Identify the user reads and Wptes.
    // co_pa orders the two alias creations of PA c.
    EXPECT_EQ(d.co_pa.size(), 1u);
    // Two fr_va edges (R0 and R1 read mappings that later change).
    EXPECT_EQ(d.fr_va.size(), 2u);
    // One fr_pa edge: R4 used WPTE2's alias of c; WPTE5 is a later alias.
    EXPECT_EQ(d.fr_pa.size(), 1u);
    // Two rf_pa edges: R4 from WPTE2, R7 from WPTE5.
    EXPECT_EQ(d.rf_pa.size(), 2u);
}

TEST(Derive, Fig5SharedWalkAndForcedWalk)
{
    const DerivedRelations a = derive(fixtures::fig5a_shared_walk());
    ASSERT_TRUE(a.well_formed) << (a.problems.empty() ? "" : a.problems[0]);
    EXPECT_EQ(a.rf_ptw.size(), 2u);      // one walk sources both reads
    EXPECT_EQ(a.ptw_source.size(), 1u);  // R0's walk sources R1

    const DerivedRelations b = derive(fixtures::fig5b_invlpg_forces_walk());
    ASSERT_TRUE(b.well_formed) << (b.problems.empty() ? "" : b.problems[0]);
    EXPECT_EQ(b.rf_ptw.size(), 2u);  // each read uses its own walk
    EXPECT_TRUE(b.ptw_source.empty());
}

TEST(Derive, Fig5bSharingAcrossInvlpgIsIllFormed)
{
    // Force R2 to reuse the pre-INVLPG TLB entry: must be rejected.
    Execution e = fixtures::fig5b_invlpg_forces_walk();
    const Program& p = e.program;
    EventId first_walk = kNone, second_read = kNone, second_walk = kNone;
    for (EventId id = 0; id < p.num_events(); ++id) {
        if (p.event(id).kind == EventKind::kRptw) {
            (first_walk == kNone ? first_walk : second_walk) = id;
        }
        if (p.event(id).kind == EventKind::kRead && p.position_of(id) > 0) {
            second_read = id;
        }
    }
    ASSERT_NE(second_walk, kNone);
    // Rebuild without the second walk is impossible here (it would orphan
    // the ghost), so just retarget the read across the INVLPG.
    e.ptw_src[second_read] = first_walk;
    const DerivedRelations d = derive(e);
    EXPECT_FALSE(d.well_formed);
}

TEST(Derive, RfAcrossDifferentPasIsIllFormed)
{
    // Two VAs with distinct frames: a read of x cannot read a write of y.
    ProgramBuilder b;
    b.thread();
    const EventId w = b.W(1);
    b.wdb(w);
    const EventId rptw_w = b.rptw(w);
    const EventId r = b.R(0);
    const EventId rptw_r = b.rptw(r);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[w] = rptw_w;
    e.ptw_src[r] = rptw_r;
    e.rf_src[rptw_w] = kNone;
    e.rf_src[rptw_r] = kNone;
    e.rf_src[r] = w;  // cross-PA rf
    e.co_pos[w] = 0;
    e.co_pos[e.program.wdb_of(w)] = 0;
    const DerivedRelations d = derive(e);
    EXPECT_FALSE(d.well_formed);
}

TEST(Derive, MissingWalkIsIllFormed)
{
    ProgramBuilder b;
    b.thread();
    const EventId r = b.R(0);
    b.rptw(r);
    Execution e = Execution::empty_for(b.build());
    // ptw_src left unset.
    const DerivedRelations d = derive(e);
    EXPECT_FALSE(d.well_formed);
}

TEST(Derive, DirtyBitValuesGroundThroughCoherence)
{
    // Two stores to the same VA whose walks each read the *other* store's
    // dirty-bit write. Dirty-bit updates preserve the mapping of their
    // coherence predecessor, so all values ground out in the initial
    // mapping: well-formed, everything resolves to PA a.
    ProgramBuilder b;
    b.thread();
    const EventId w1 = b.W(0);
    const EventId wdb1 = b.wdb(w1);
    const EventId rptw1 = b.rptw(w1);
    const EventId w2 = b.W(0);
    const EventId wdb2 = b.wdb(w2);
    const EventId rptw2 = b.rptw(w2);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[w1] = rptw1;
    e.ptw_src[w2] = rptw2;
    e.rf_src[rptw1] = wdb2;
    e.rf_src[rptw2] = wdb1;
    e.co_pos[w1] = 0;
    e.co_pos[w2] = 1;
    e.co_pos[wdb1] = 0;
    e.co_pos[wdb2] = 1;
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed) << (d.problems.empty() ? "" : d.problems[0]);
    EXPECT_EQ(d.resolved_pa[w1], 0);
    EXPECT_EQ(d.resolved_pa[w2], 0);
    EXPECT_EQ(d.resolved_pa[wdb1], 0);
    EXPECT_EQ(d.resolved_pa[wdb2], 0);
}

TEST(Derive, DirtyBitAfterRemapCarriesNewMapping)
{
    // WPTE installs x -> b; a later store's dirty-bit write (coherence
    // after the WPTE) must carry the new mapping, matching Fig. 10b where
    // Wdb3 shows "z = VA x -> PA b".
    const Execution e = fixtures::fig10b_dirtybit3();
    const DerivedRelations d = derive(e);
    ASSERT_TRUE(d.well_formed);
    for (EventId id = 0; id < e.program.num_events(); ++id) {
        if (e.program.event(id).kind == EventKind::kWdb) {
            EXPECT_EQ(d.resolved_pa[id], 1);  // PA b
            EXPECT_EQ(d.provenance[id], 0);   // via WPTE0
        }
    }
}

TEST(Derive, CoPositionsMustBePermutation)
{
    Execution e = fixtures::fig2a_sb_mcm();
    e.co_pos[0] = 1;  // lone write at position 1 (not 0)
    const DerivedRelations d = derive(e, {/*vm_enabled=*/false});
    EXPECT_FALSE(d.well_formed);
}

TEST(Derive, PpoDropsWriteToRead)
{
    const Execution e = fixtures::fig2a_sb_mcm();
    const DerivedRelations d = derive(e, {/*vm_enabled=*/false});
    ASSERT_TRUE(d.well_formed);
    // W0 -> R1 (same thread) is the store-buffer relaxation: not in ppo.
    EXPECT_FALSE(has_edge(d.ppo, 0, 1));
    EXPECT_FALSE(has_edge(d.ppo, 2, 3));
}

TEST(Derive, HasCycleUtility)
{
    EdgeSet ring{{0, 1}, {1, 2}, {2, 0}};
    EdgeSet chain{{0, 1}, {1, 2}};
    EXPECT_TRUE(has_cycle(3, {&ring}));
    EXPECT_FALSE(has_cycle(3, {&chain}));
    EdgeSet a{{0, 1}};
    EdgeSet b{{1, 0}};
    EXPECT_TRUE(has_cycle(2, {&a, &b}));
    EXPECT_FALSE(has_cycle(2, {&a}));
}

TEST(Derive, CoAndCoPaDisagreementRejected)
{
    // Two WPTEs on the same PTE location targeting the same PA: the
    // alias-creation order must match the location's coherence order.
    ProgramBuilder b;
    b.thread();
    const EventId p1 = b.wpte(0, 1);
    b.invlpg_for(p1);
    const EventId p2 = b.wpte(0, 1);
    b.invlpg_for(p2);
    const EventId r = b.R(0);
    const EventId walk = b.rptw(r);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r] = walk;
    e.rf_src[walk] = p2;
    e.co_pos[p1] = 0;
    e.co_pos[p2] = 1;
    e.co_pa_pos[p1] = 1;  // contradicts co
    e.co_pa_pos[p2] = 0;
    EXPECT_FALSE(derive(e).well_formed);
    e.co_pa_pos[p1] = 0;
    e.co_pa_pos[p2] = 1;
    EXPECT_TRUE(derive(e).well_formed);
}

TEST(Derive, WalkOnWrongCoreRejected)
{
    // A data access may not translate through another core's TLB.
    ProgramBuilder b;
    b.thread();
    const EventId r0 = b.R(0);
    const EventId w0 = b.rptw(r0);
    b.thread();
    const EventId r1 = b.R(0);
    const EventId w1 = b.rptw(r1);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[r0] = w0;
    e.ptw_src[r1] = w0;  // cross-core TLB sharing: illegal
    e.rf_src[w0] = kNone;
    e.rf_src[w1] = kNone;
    EXPECT_FALSE(derive(e).well_formed);
    e.ptw_src[r1] = w1;
    EXPECT_TRUE(derive(e).well_formed);
}

TEST(Derive, WalkForWrongVaRejected)
{
    ProgramBuilder b;
    b.thread();
    const EventId rx = b.R(0);
    const EventId wx = b.rptw(rx);
    const EventId ry = b.R(1);
    const EventId wy = b.rptw(ry);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[rx] = wx;
    e.ptw_src[ry] = wx;  // y translated through x's entry
    e.rf_src[wx] = kNone;
    e.rf_src[wy] = kNone;
    EXPECT_FALSE(derive(e).well_formed);
}

TEST(Derive, TlbEntryUsedBeforeItsWalkRejected)
{
    // A hit cannot use a TLB entry loaded by a po-later instruction.
    ProgramBuilder b;
    b.thread();
    b.R(0);  // the would-be hit, first in po
    const EventId r1 = b.R(0);
    const EventId w1 = b.rptw(r1);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[e.program.thread(0)[0]] = w1;  // uses the later walk
    e.ptw_src[r1] = w1;
    e.rf_src[w1] = kNone;
    EXPECT_FALSE(derive(e).well_formed);
}

TEST(Derive, ResolveAddressesStandalone)
{
    const Execution e = fixtures::fig10b_dirtybit3();
    const ResolutionResult r = resolve_addresses(e);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.resolved_pa[2], 1);  // R2 -> PA b
    EXPECT_EQ(r.provenance[2], 0);   // via WPTE0
}

}  // namespace
}  // namespace transform::elt
