/// \file
/// Parameterized property tests: invariants that must hold across every
/// paper fixture, every synthesized suite, and every generated skeleton.
#include <gtest/gtest.h>

#include <set>

#include "elt/derive.h"
#include "elt/fixtures.h"
#include "elt/printer.h"
#include "elt/serialize.h"
#include "mtm/model.h"
#include "mtm/relax.h"
#include "synth/canonical.h"
#include "synth/engine.h"
#include "synth/exec_enum.h"
#include "synth/minimality.h"
#include "synth/skeleton.h"
#include "util/permutations.h"

namespace transform {
namespace {

using elt::Execution;

struct FixtureCase {
    const char* name;
    Execution (*make)();
    bool vm;
};

const FixtureCase kFixtures[] = {
    {"fig2a", elt::fixtures::fig2a_sb_mcm, false},
    {"sb_zero", elt::fixtures::sb_both_reads_zero_mcm, false},
    {"fig2b", elt::fixtures::fig2b_sb_elt, true},
    {"fig2c", elt::fixtures::fig2c_sb_elt_aliased, true},
    {"fig4", elt::fixtures::fig4_remap_chain, true},
    {"fig5a", elt::fixtures::fig5a_shared_walk, true},
    {"fig5b", elt::fixtures::fig5b_invlpg_forces_walk, true},
    {"fig6", elt::fixtures::fig6_remap_disambiguation, true},
    {"fig8", elt::fixtures::fig8_non_minimal_mcm, false},
    {"fig10a", elt::fixtures::fig10a_ptwalk2, true},
    {"fig10b", elt::fixtures::fig10b_dirtybit3, true},
    {"fig11", elt::fixtures::fig11_new_elt, true},
};

class FixtureProperty : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(FixtureProperty, WellFormed)
{
    const auto& param = GetParam();
    const Execution e = param.make();
    const auto d = elt::derive(e, {param.vm});
    EXPECT_TRUE(d.well_formed)
        << (d.problems.empty() ? "" : d.problems[0]);
}

TEST_P(FixtureProperty, XmlRoundTripPreservesVerdict)
{
    const auto& param = GetParam();
    const Execution e = param.make();
    const mtm::Model model = param.vm ? mtm::x86t_elt() : mtm::x86tso();
    const auto parsed = elt::execution_from_xml(elt::execution_to_xml(e));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(model.violated_axioms(e), model.violated_axioms(*parsed));
}

TEST_P(FixtureProperty, CanonicalKeyInvariantUnderThreadOrder)
{
    const auto& param = GetParam();
    const elt::Program p = param.make().program;
    const std::string key = synth::canonical_key(p);
    // The key equals the minimum over all thread orders by construction;
    // every per-order serialization must be >= it.
    util::for_each_permutation(
        p.num_threads(), [&](const std::vector<int>& order) {
            EXPECT_GE(synth::serialize_with_thread_order(p, order), key);
            return true;
        });
}

TEST_P(FixtureProperty, PrinterCoversAllEvents)
{
    const auto& param = GetParam();
    const elt::Program p = param.make().program;
    const std::string table = elt::program_to_string(p);
    for (elt::EventId id = 0; id < p.num_events(); ++id) {
        const std::string rendered = elt::event_to_string(id, p.event(id));
        EXPECT_NE(table.find(rendered), std::string::npos)
            << "missing " << rendered;
    }
}

TEST_P(FixtureProperty, DotOutputSyntacticallyPlausible)
{
    const auto& param = GetParam();
    const Execution e = param.make();
    const auto d = elt::derive(e, {param.vm});
    ASSERT_TRUE(d.well_formed);
    const std::string dot = elt::execution_to_dot(e, d);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
              std::count(dot.begin(), dot.end(), '}'));
}

TEST_P(FixtureProperty, RelaxationsPreserveEventCountBudget)
{
    const auto& param = GetParam();
    const Execution e = param.make();
    for (const auto& relaxation : mtm::applicable_relaxations(e.program)) {
        const Execution relaxed =
            mtm::apply_relaxation(e, relaxation, param.vm);
        EXPECT_LE(relaxed.program.num_events(), e.program.num_events());
        if (relaxation.kind == mtm::Relaxation::Kind::kDropRmw) {
            EXPECT_EQ(relaxed.program.num_events(), e.program.num_events());
        } else {
            EXPECT_LT(relaxed.program.num_events(), e.program.num_events());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllFixtures, FixtureProperty,
                         ::testing::ValuesIn(kFixtures),
                         [](const auto& info) {
                             return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------------
// Per-axiom synthesis invariants.
// ---------------------------------------------------------------------------

class AxiomSuiteProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(AxiomSuiteProperty, SuiteMembersSatisfySpanningCriteria)
{
    const std::string axiom = GetParam();
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions opt;
    opt.min_bound = 4;
    opt.bound = axiom == "rmw_atomicity" ? 7 : 5;
    opt.max_threads = 2;
    opt.max_vas = 2;
    const auto suite = synth::synthesize_suite(model, axiom, opt);
    std::set<std::string> keys;
    for (const auto& test : suite.tests) {
        // Unique canonical keys.
        EXPECT_TRUE(keys.insert(test.canonical_key).second);
        // Within bound.
        EXPECT_LE(test.size, opt.bound);
        EXPECT_GE(test.size, opt.min_bound);
        // Violates the target axiom.
        EXPECT_NE(std::find(test.violated.begin(), test.violated.end(), axiom),
                  test.violated.end());
        // Witness judged interesting + minimal.
        const auto verdict = synth::judge(model, test.witness);
        EXPECT_TRUE(verdict.interesting);
        EXPECT_TRUE(verdict.minimal) << verdict.blocking_relaxation;
        // Witness structurally valid and well-formed.
        EXPECT_TRUE(test.witness.program.validate().empty());
        EXPECT_TRUE(elt::derive(test.witness).well_formed);
    }
}

TEST_P(AxiomSuiteProperty, EveryRelaxationOfEveryMemberIsPermitted)
{
    const std::string axiom = GetParam();
    const mtm::Model model = mtm::x86t_elt();
    synth::SynthesisOptions opt;
    opt.min_bound = 4;
    opt.bound = axiom == "rmw_atomicity" ? 7 : 5;
    const auto suite = synth::synthesize_suite(model, axiom, opt);
    for (const auto& test : suite.tests) {
        for (const auto& relaxation :
             mtm::applicable_relaxations(test.witness.program)) {
            const Execution relaxed =
                mtm::apply_relaxation(test.witness, relaxation);
            if (relaxed.program.num_events() == 0) {
                continue;
            }
            EXPECT_TRUE(model.violated_axioms(relaxed).empty())
                << axiom << ": relaxation '"
                << relaxation.describe(test.witness.program)
                << "' should be permitted";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllAxioms, AxiomSuiteProperty,
                         ::testing::ValuesIn(mtm::x86t_elt_axiom_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Skeleton sweep invariants.
// ---------------------------------------------------------------------------

class SkeletonSweep : public ::testing::TestWithParam<int> {};

TEST_P(SkeletonSweep, GeneratedProgramsValidateAndAdmitExecutions)
{
    synth::SkeletonOptions opt;
    opt.num_events = GetParam();
    opt.max_threads = 2;
    opt.max_vas = 2;
    int programs = 0;
    int with_executions = 0;
    synth::for_each_skeleton(opt, [&](const elt::Program& p) {
        EXPECT_TRUE(p.validate().empty());
        EXPECT_EQ(p.num_events(), GetParam());
        bool any = false;
        synth::for_each_execution(p, true, [&](const Execution& e) {
            const auto d = elt::derive(e);
            EXPECT_TRUE(d.well_formed)
                << (d.problems.empty() ? "" : d.problems[0]);
            any = true;
            return false;
        });
        ++programs;
        with_executions += any ? 1 : 0;
        return programs < 400;  // sample cap keeps the sweep fast
    });
    EXPECT_GT(programs, 0);
    // Every generated skeleton admits at least one well-formed execution
    // (the placement rules guarantee translation sources exist).
    EXPECT_EQ(with_executions, programs);
}

INSTANTIATE_TEST_SUITE_P(Bounds, SkeletonSweep, ::testing::Values(3, 4, 5, 6),
                         [](const auto& info) {
                             return "bound" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace transform
