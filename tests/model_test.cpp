/// \file
/// Unit tests for the memory models: verdicts on every paper figure.
#include <gtest/gtest.h>

#include <algorithm>

#include "elt/fixtures.h"
#include "mtm/model.h"

namespace transform::mtm {
namespace {

using elt::Execution;

bool
violates(const Model& model, const Execution& e, const std::string& axiom)
{
    const auto violated = model.violated_axioms(e);
    return std::find(violated.begin(), violated.end(), axiom) != violated.end();
}

TEST(Model, AxiomLookup)
{
    const Model m = x86t_elt();
    EXPECT_EQ(m.name(), "x86t_elt");
    EXPECT_TRUE(m.vm_aware());
    EXPECT_EQ(m.axioms().size(), 5u);
    EXPECT_NE(m.axiom("invlpg"), nullptr);
    EXPECT_EQ(m.axiom("nonsense"), nullptr);
    EXPECT_EQ(x86t_elt_axiom_names().size(), 5u);
}

TEST(Model, Fig2aPermittedUnderTso)
{
    const Model tso = x86tso();
    EXPECT_FALSE(tso.vm_aware());
    EXPECT_TRUE(tso.permits(elt::fixtures::fig2a_sb_mcm()));
}

TEST(Model, SbBothZeroPermittedUnderTsoOnly)
{
    // The classic sb outcome: permitted by TSO (store buffering), forbidden
    // under sequential consistency.
    const Execution e = elt::fixtures::sb_both_reads_zero_mcm();
    EXPECT_TRUE(x86tso().permits(e));

    // An SC MCM: reuse sc_t_elt's axioms but in MCM (non-VM) mode by
    // constructing the SC causality check directly: sb violates it.
    const Model sc("sc_mcm", /*vm_aware=*/false, sc_t_elt().axioms());
    EXPECT_FALSE(sc.permits(e));
    EXPECT_TRUE(violates(sc, e, "causality"));
}

TEST(Model, Fig2bEltPermitted)
{
    EXPECT_TRUE(x86t_elt().permits(elt::fixtures::fig2b_sb_elt()));
}

TEST(Model, Fig2cAliasedForbiddenByCoherence)
{
    const Execution e = elt::fixtures::fig2c_sb_elt_aliased();
    const Model m = x86t_elt();
    EXPECT_FALSE(m.permits(e));
    EXPECT_TRUE(violates(m, e, "sc_per_loc"));
}

TEST(Model, Fig4Permitted)
{
    EXPECT_TRUE(x86t_elt().permits(elt::fixtures::fig4_remap_chain()));
}

TEST(Model, Fig5Permitted)
{
    EXPECT_TRUE(x86t_elt().permits(elt::fixtures::fig5a_shared_walk()));
    EXPECT_TRUE(x86t_elt().permits(elt::fixtures::fig5b_invlpg_forces_walk()));
}

TEST(Model, Fig6Permitted)
{
    EXPECT_TRUE(x86t_elt().permits(elt::fixtures::fig6_remap_disambiguation()));
}

TEST(Model, Fig8ForbiddenMcm)
{
    // The sb-style cycle with an extra unrelated write: forbidden (the
    // cycle exists) regardless of the extra write.
    const Execution e = elt::fixtures::fig8_non_minimal_mcm();
    const Model tso = x86tso();
    EXPECT_FALSE(tso.permits(e));
}

TEST(Model, Fig10aForbiddenByScPerLocAndInvlpg)
{
    const Execution e = elt::fixtures::fig10a_ptwalk2();
    const Model m = x86t_elt();
    EXPECT_TRUE(violates(m, e, "sc_per_loc"));
    EXPECT_TRUE(violates(m, e, "invlpg"));
}

TEST(Model, Fig10bPermitted)
{
    EXPECT_TRUE(x86t_elt().permits(elt::fixtures::fig10b_dirtybit3()));
}

TEST(Model, Fig11ForbiddenByInvlpg)
{
    const Execution e = elt::fixtures::fig11_new_elt();
    const Model m = x86t_elt();
    EXPECT_FALSE(m.permits(e));
    EXPECT_TRUE(violates(m, e, "invlpg"));
}

TEST(Model, IllFormedReportsWellFormedPseudoAxiom)
{
    Execution e = elt::fixtures::fig10a_ptwalk2();
    e.ptw_src[2] = elt::kNone;  // break the translation
    const auto violated = x86t_elt().violated_axioms(e);
    ASSERT_EQ(violated.size(), 1u);
    EXPECT_EQ(violated[0], "well_formed");
}

TEST(Model, ScMtmForbidsTsoOutcome)
{
    // Under the SC-based MTM, even the plain ELT store-buffering outcome
    // (both reads stale) is forbidden; x86t_elt permits it.
    // Build sb ELT with both reads returning initial values.
    elt::ProgramBuilder b;
    b.thread();
    const auto w0 = b.W(0);
    const auto wdb0 = b.wdb(w0);
    const auto rptw0 = b.rptw(w0);
    const auto r1 = b.R(1);
    const auto rptw1 = b.rptw(r1);
    b.thread();
    const auto w2 = b.W(1);
    const auto wdb2 = b.wdb(w2);
    const auto rptw2 = b.rptw(w2);
    const auto r3 = b.R(0);
    const auto rptw3 = b.rptw(r3);
    Execution e = Execution::empty_for(b.build());
    e.ptw_src[w0] = rptw0;
    e.ptw_src[r1] = rptw1;
    e.ptw_src[w2] = rptw2;
    e.ptw_src[r3] = rptw3;
    e.rf_src[rptw0] = wdb0;
    e.rf_src[rptw1] = elt::kNone;
    e.rf_src[rptw2] = wdb2;
    e.rf_src[rptw3] = elt::kNone;
    e.rf_src[r1] = elt::kNone;  // stale
    e.rf_src[r3] = elt::kNone;  // stale
    e.co_pos[w0] = 0;
    e.co_pos[w2] = 0;
    e.co_pos[wdb0] = 0;
    e.co_pos[wdb2] = 0;
    EXPECT_TRUE(x86t_elt().permits(e));
    EXPECT_FALSE(sc_t_elt().permits(e));
}

}  // namespace
}  // namespace transform::mtm
